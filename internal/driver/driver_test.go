package driver

import (
	"bytes"
	"testing"

	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
)

// helloSrc carries a genuine flow dependence: a[i+1] = f(a[i]) cascades
// across iterations, so a wrong no-alias answer lets the vectorizer
// break the program — the miniature of the paper's "dangerous queries".
const helloSrc = `
int main() {
	double a[64];
	for (int i = 0; i < 64; i++) {
		a[i] = (double)i * 2.0;
	}
	for (int i = 0; i < 63; i++) {
		a[i+1] = a[i] * 0.5 + a[i+1];
	}
	double s = 0.0;
	for (int i = 0; i < 64; i++) {
		s = s + a[i];
	}
	print("sum=", s, "\n");
	return 0;
}
`

func TestProbeHelloChunked(t *testing.T) {
	var log bytes.Buffer
	spec := &BenchSpec{
		Name:    "hello",
		Compile: pipeline.Config{Source: helloSrc},
		Log:     &log,
	}
	res, err := Probe(spec)
	if err != nil {
		t.Fatalf("probe: %v\n%s", err, log.String())
	}
	t.Logf("\n%s", log.String())
	if res.FullyOptimistic {
		t.Fatalf("hello has a true alias hazard; full optimism should fail")
	}
	s := res.Final.Compile.ORAQLStats()
	if s.UniquePessimistic == 0 {
		t.Fatalf("expected pessimistic queries, got none")
	}
	if s.UniqueOptimistic == 0 {
		t.Fatalf("expected some optimistic queries")
	}
	if res.Final.Run.Stdout != res.Baseline.Run.Stdout {
		t.Fatalf("final output %q != baseline %q", res.Final.Run.Stdout, res.Baseline.Run.Stdout)
	}
	t.Logf("final: opt=%d/%d pess=%d/%d compiles=%d tests=%d cached=%d",
		s.UniqueOptimistic, s.CachedOptimistic, s.UniquePessimistic, s.CachedPessimistic,
		res.Compiles, res.TestsRun, res.TestsCached)
}

// TestGuiltyQueries checks the Fig. 3 accessor: the records returned
// match the pessimistic half of the final sequence exactly, and each
// one is attributable (pass, function, and both locations).
func TestGuiltyQueries(t *testing.T) {
	res, err := Probe(&BenchSpec{
		Name:    "hello-guilty",
		Compile: pipeline.Config{Source: helloSrc},
	})
	if err != nil {
		t.Fatal(err)
	}
	guilty := res.GuiltyQueries()
	if len(guilty) == 0 {
		t.Fatal("hello has a true alias hazard; GuiltyQueries must be non-empty")
	}
	s := res.Final.Compile.ORAQLStats()
	if len(guilty) != s.UniquePessimistic {
		t.Errorf("GuiltyQueries = %d records, stats say %d pessimistic", len(guilty), s.UniquePessimistic)
	}
	if want := res.FinalSeq.CountPessimistic(); len(guilty) != want {
		t.Errorf("GuiltyQueries = %d records, final sequence has %d pessimistic answers", len(guilty), want)
	}
	for _, rec := range guilty {
		if rec.Optimistic {
			t.Errorf("optimistic record in guilty set: %+v", rec)
		}
		if rec.Pass == "" || rec.Func == "" {
			t.Errorf("guilty record not attributed: %+v", rec)
		}
		a, b := rec.LocDescriptions()
		if a == "" || b == "" {
			t.Errorf("guilty record lacks location descriptions: %+v", rec)
		}
	}

	// A nil final outcome must not panic.
	if got := (&Result{}).GuiltyQueries(); got != nil {
		t.Errorf("empty result yields %v, want nil", got)
	}
}

func TestProbeHelloFreqSpace(t *testing.T) {
	spec := &BenchSpec{
		Name:     "hello",
		Compile:  pipeline.Config{Source: helloSrc},
		Strategy: FreqSpace,
	}
	res, err := Probe(spec)
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if res.FullyOptimistic {
		t.Fatalf("full optimism should fail")
	}
	if res.Final.Run.Stdout != res.Baseline.Run.Stdout {
		t.Fatalf("final output mismatch")
	}
}

// noHazardSrc has no true aliasing: the probe must report fully
// optimistic after exactly one baseline + one test compile.
const noHazardSrc = `
int main() {
	double a[16];
	double b[16];
	for (int i = 0; i < 16; i++) {
		a[i] = (double)i;
	}
	for (int i = 0; i < 16; i++) {
		b[i] = a[i] * 2.0;
	}
	print(checksum(b, 16), "\n");
	return 0;
}
`

func TestProbeFullyOptimisticFastPath(t *testing.T) {
	res, err := Probe(&BenchSpec{
		Name:    "nohazard",
		Compile: pipeline.Config{Source: noHazardSrc},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FullyOptimistic {
		t.Fatal("expected fully optimistic")
	}
	if len(res.FinalSeq) != 0 {
		t.Errorf("fully optimistic result must keep the empty sequence, got %v", res.FinalSeq)
	}
	// Baseline + optimistic test + finalize = 3 compiles.
	if res.Compiles != 3 {
		t.Errorf("compiles = %d, want 3", res.Compiles)
	}
}

func TestProbeTestBudgetExhausted(t *testing.T) {
	spec := &BenchSpec{
		Name:     "hello",
		Compile:  pipeline.Config{Source: helloSrc},
		MaxTests: 1,
	}
	if _, err := Probe(spec); err == nil {
		t.Fatal("a one-test budget must fail on a hazardous program")
	}
}

func TestStrategiesAgreeOnSafety(t *testing.T) {
	// Both strategies must end with a verifying sequence whose
	// pessimistic bits cover the hazard; the exact count may differ
	// (both are greedy local searches).
	for _, s := range []Strategy{Chunked, FreqSpace} {
		spec := &BenchSpec{
			Name:     "hello",
			Compile:  pipeline.Config{Source: helloSrc},
			Strategy: s,
		}
		res, err := Probe(spec)
		if err != nil {
			t.Fatalf("strategy %d: %v", s, err)
		}
		if res.Final.Compile.ORAQLStats().UniquePessimistic == 0 {
			t.Errorf("strategy %d found no pessimistic queries", s)
		}
		if res.Final.Run.Stdout != res.Baseline.Run.Stdout {
			t.Errorf("strategy %d: output mismatch", s)
		}
	}
}

func TestExeCacheDisabledRunsMoreTests(t *testing.T) {
	run := func(disable bool) *Result {
		res, err := Probe(&BenchSpec{
			Name:            "hello",
			Compile:         pipeline.Config{Source: helloSrc},
			DisableExeCache: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	withCache := run(false)
	withoutCache := run(true)
	if withoutCache.TestsCached != 0 {
		t.Error("disabled cache must not report cached tests")
	}
	if withoutCache.TestsRun <= withCache.TestsRun {
		t.Errorf("cache must reduce executed tests: %d (cached) vs %d (no cache)",
			withCache.TestsRun, withoutCache.TestsRun)
	}
}

func TestProbeRespectsProvidedReferences(t *testing.T) {
	spec := &BenchSpec{
		Name:    "nohazard",
		Compile: pipeline.Config{Source: noHazardSrc},
	}
	spec.Verify.References = []string{"this will never match\n"}
	if _, err := Probe(spec); err == nil {
		t.Fatal("a reference the baseline cannot meet must fail")
	}
}

func TestFinalSequenceIsReproducible(t *testing.T) {
	spec1 := &BenchSpec{Name: "hello", Compile: pipeline.Config{Source: helloSrc}}
	res1, err := Probe(spec1)
	if err != nil {
		t.Fatal(err)
	}
	spec2 := &BenchSpec{Name: "hello", Compile: pipeline.Config{Source: helloSrc}}
	res2, err := Probe(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if res1.FinalSeq.String() != res2.FinalSeq.String() {
		t.Errorf("probing must be deterministic: %q vs %q", res1.FinalSeq, res2.FinalSeq)
	}
	if res1.Final.Compile.ExeHash() != res2.Final.Compile.ExeHash() {
		t.Error("final executables must be bit-identical across probes")
	}
}

// TestProbeMustAliasMode runs the full workflow with the Section VIII
// optimistic-must-alias responder: bisection must converge to a build
// matching the baseline.
func TestProbeMustAliasMode(t *testing.T) {
	spec := &BenchSpec{
		Name:    "hello-must",
		Compile: pipeline.Config{Source: helloSrc},
		ORAQL:   oraql.Options{Mode: oraql.ModeOptimisticMust},
	}
	res, err := Probe(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Run.Stdout != res.Baseline.Run.Stdout {
		t.Fatalf("must-alias probing diverged: %q vs %q",
			res.Final.Run.Stdout, res.Baseline.Run.Stdout)
	}
	t.Logf("must-alias mode: fullyOptimistic=%v pess=%d",
		res.FullyOptimistic, res.Final.Compile.ORAQLStats().UniquePessimistic)
}
