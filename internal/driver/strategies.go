package driver

// Bisection strategies are registered implementations behind the
// Strategy interface: the decision loop hands the strategy a Prober —
// its view of the probing state — and the strategy decides the first n
// response bits in however many (possibly speculative) tests it likes.
// The built-ins are the chunked recursion the paper settled on
// (Section IV-B), the frequency-space splitting it compares against,
// and a linear one-query-at-a-time diagnostic baseline; campaign
// scripts and the serve API select them by registered name, and new
// strategies are a registration, not a driver change.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/registry"
)

// Prober is the strategy's interface to the probing state: testing
// candidates (with optional speculative prefetch), pessimistic
// padding, and the speculation-ordering hints from persisted campaign
// history. Implemented by the driver's internal state; campaign tests
// may fake it.
type Prober interface {
	// Test verifies one candidate sequence, consuming a test from the
	// budget. The trailing specs are speculative candidates prefetched
	// onto the worker pool — likely future tests on the fail path —
	// which cost nothing from the budget and are cancelled when
	// overtaken.
	Test(seq oraql.Seq, specs ...oraql.Seq) (bool, error)
	// Pad extends a decided prefix with pessimistic padding to the
	// driver's generous padding length (undecided queries stay
	// pessimistic).
	Pad(decided oraql.Seq) oraql.Seq
	// Workers is the speculation budget (1 = strictly sequential; no
	// point building speculative candidates).
	Workers() int
	// PFail estimates the probability that flipping [lo, hi) optimistic
	// fails verification, from persisted per-query priors (0.5-based
	// when unknown).
	PFail(lo, hi int) float64
	// HasPriors reports whether persisted verdict priors are available
	// (PFail is then informative, and speculation ordering pays off).
	HasPriors() bool
	// Logf emits a progress line, prefixed with the benchmark name.
	Logf(format string, args ...any)
}

// Strategy decides the first n response bits of a probing campaign.
// Implementations must be stateless values (one instance serves
// concurrent campaigns) and must return a locally maximal decision:
// every bit left pessimistic was proven necessary by a failed test.
type Strategy interface {
	// Name is the registered lookup key ("chunked", "freq", ...).
	Name() string
	// Solve bisects [0, n) against p and returns the decided bits.
	Solve(p Prober, n int) (oraql.Seq, error)
}

// Built-in strategies. These are the values registered under their
// names; BenchSpec.Strategy nil means Chunked.
var (
	Chunked   Strategy = chunkedStrategy{}
	FreqSpace Strategy = freqStrategy{}
	Linear    Strategy = linearStrategy{}
	Bayes     Strategy = bayesStrategy{}
)

func init() {
	for _, s := range []struct {
		strat Strategy
		desc  string
	}{
		{Chunked, "recursive halving of consecutive ranges (paper default; good when dangerous queries cluster)"},
		{FreqSpace, "residue-class splitting by doubling modulus (descriptors independent of sequence length)"},
		{Linear, "one query at a time, left to right (O(n) tests; diagnostic baseline)"},
		{Bayes, "probability-ranked bisection: IR features + persisted priors order queries safest-first and balance splits by guilt mass"},
	} {
		registry.Strategies.Register(registry.Entry{
			Name:        s.strat.Name(),
			Description: s.desc,
			Value:       s.strat,
		})
	}
}

// StrategyByName resolves a registered strategy.
func StrategyByName(name string) (Strategy, error) {
	e, ok := registry.Strategies.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("driver: unknown strategy %q (known: %s)",
			name, strings.Join(registry.Strategies.Names(), ", "))
	}
	return e.Value.(Strategy), nil
}

// chunkedStrategy is the paper's chunked recursion (Fig. 2).
type chunkedStrategy struct{}

func (chunkedStrategy) Name() string { return "chunked" }

// Solve runs the chunked recursion over [0, n). The knownBad flag
// implements the paper's Fig. 2 deduction: when a parent range failed
// and its first half verified entirely optimistic, the second half must
// contain a dangerous query, so its whole-range test is skipped.
func (s chunkedStrategy) Solve(p Prober, n int) (oraql.Seq, error) {
	decided := make(oraql.Seq, n)
	// allOpt reports whether the whole range ended up optimistic.
	var solve func(lo, hi int, knownBad bool) (bool, error)
	solve = func(lo, hi int, knownBad bool) (bool, error) {
		if lo >= hi {
			return true, nil
		}
		if !knownBad {
			cand := decided.Clone()
			for i := lo; i < hi; i++ {
				cand[i] = true
			}
			ok, err := p.Test(p.Pad(cand[:hi]), s.specs(p, decided, lo, hi)...)
			if err != nil {
				return false, err
			}
			if ok {
				copy(decided[lo:hi], cand[lo:hi])
				return true, nil
			}
		}
		if hi-lo == 1 {
			decided[lo] = false // dangerous query pinned
			p.Logf("query %d must stay pessimistic", lo)
			return false, nil
		}
		mid := (lo + hi) / 2
		leftAll, err := solve(lo, mid, false)
		if err != nil {
			return false, err
		}
		// If the left half is entirely optimistic, the dangerous query
		// must be on the right: skip the right's whole-range test.
		if _, err := solve(mid, hi, leftAll); err != nil {
			return false, err
		}
		return false, nil
	}
	if _, err := solve(0, n, true); err != nil {
		return nil, err
	}
	return decided, nil
}

// specs builds the speculative candidates launched alongside the
// whole-range test of [lo, hi): the fail path descends the left spine
// (left half, left quarter, ...), and the right half is speculated
// under the assumption that the whole left half stays pessimistic.
// Decided bits only ever flip to optimistic on a success — and every
// success cancels outstanding speculation — so candidates built from
// the current decided state stay exact until consumed or cancelled.
//
// When persisted verdict priors are available, candidates are ordered
// by estimated consumption probability — the product of each
// ancestor's failure probability along the path that reaches the
// candidate's test — so the engine's bounded speculation depth is
// spent on the tests most likely to be consumed.
func (chunkedStrategy) specs(p Prober, decided oraql.Seq, lo, hi int) []oraql.Seq {
	if p.Workers() <= 1 || hi-lo <= 1 {
		return nil
	}
	var specs []oraql.Seq
	var scores []float64
	prob := 1.0 // P(every ancestor range test failed)
	for l, h := lo, hi; h-l > 1 && len(specs) < p.Workers()-1; {
		m := (l + h) / 2
		cand := decided.Clone()
		for i := l; i < m; i++ {
			cand[i] = true
		}
		prob *= p.PFail(l, h)
		specs = append(specs, p.Pad(cand[:m]))
		scores = append(scores, prob)
		h = m
	}
	if mid := (lo + hi) / 2; len(specs) < p.Workers()-1 {
		cand := decided.Clone()
		for i := mid; i < hi; i++ {
			cand[i] = true
		}
		specs = append(specs, p.Pad(cand[:hi]))
		// Consumed when [lo,hi) failed and its left half failed too
		// (leftAll skips the right's whole-range test otherwise).
		scores = append(scores, p.PFail(lo, hi)*p.PFail(lo, mid))
	}
	if p.HasPriors() {
		ord := make([]int, len(specs))
		for i := range ord {
			ord[i] = i
		}
		sort.SliceStable(ord, func(a, b int) bool { return scores[ord[a]] > scores[ord[b]] })
		sorted := make([]oraql.Seq, len(specs))
		for i, j := range ord {
			sorted[i] = specs[j]
		}
		specs = sorted
	}
	return specs
}

// freqStrategy is the frequency-space recursion: residue classes of
// the query index, refined by doubling the modulus.
type freqStrategy struct{}

func (freqStrategy) Name() string { return "freq" }

func (s freqStrategy) Solve(p Prober, n int) (oraql.Seq, error) {
	decided := make(oraql.Seq, n)
	done := make([]bool, n)
	var solve func(m, r int) error
	solve = func(m, r int) error {
		if r >= n {
			return nil
		}
		cand := decided.Clone()
		for i := r; i < n; i += m {
			if !done[i] {
				cand[i] = true
			}
		}
		ok, err := p.Test(p.Pad(cand), s.specs(p, decided, done, m, r)...)
		if err != nil {
			return err
		}
		if ok {
			for i := r; i < n; i += m {
				if !done[i] {
					decided[i] = true
					done[i] = true
				}
			}
			return nil
		}
		if m >= n {
			// The class has a single member in range.
			decided[r] = false
			done[r] = true
			p.Logf("query %d must stay pessimistic", r)
			return nil
		}
		if err := solve(2*m, r); err != nil {
			return err
		}
		return solve(2*m, r+m)
	}
	if err := solve(1, 0); err != nil {
		return nil, err
	}
	return decided, nil
}

// specs builds the speculative candidates launched alongside the test
// of residue class (m, r): the refined classes of the next modulus
// levels, expanded breadth-first so one whole level tests in parallel.
// All of them belong to the fail path (decided unchanged); a success
// cancels them.
func (freqStrategy) specs(p Prober, decided oraql.Seq, done []bool, m, r int) []oraql.Seq {
	n := len(decided)
	if p.Workers() <= 1 || m >= n {
		return nil
	}
	type class struct{ m, r int }
	frontier := []class{{2 * m, r}, {2 * m, r + m}}
	var specs []oraql.Seq
	for len(frontier) > 0 && len(specs) < p.Workers()-1 {
		c := frontier[0]
		frontier = frontier[1:]
		if c.r >= n {
			continue
		}
		cand := decided.Clone()
		fresh := false
		for i := c.r; i < n; i += c.m {
			if !done[i] {
				cand[i] = true
				fresh = true
			}
		}
		if fresh {
			specs = append(specs, p.Pad(cand))
		}
		if c.m < n {
			frontier = append(frontier, class{2 * c.m, c.r}, class{2 * c.m, c.r + c.m})
		}
	}
	return specs
}

// bayesStrategy is the prior-driven probabilistic bisection: the
// chunked recursion with its split points placed by estimated
// per-query failure probability (IR feature scores beta-updated by
// persisted verdict history — Prober.PFail) instead of at the index
// midpoint. Each failing range splits at its guilt-mass median — the
// index where the cumulative -log survival probability reaches half
// the range's total — and, when a single dominant likely-guilty query
// carries most of the mass, immediately before it.
//
// The effect with sharp priors: the high-probability-safe mass ahead
// of each suspect tests as one large optimistic chunk (one test
// decides most queries) and the likely-guilty queries are isolated as
// singletons within a few tests, instead of paying a full log-depth
// descent per conviction. The recursion structure, left-to-right
// decision order, and singleton conviction contexts are exactly the
// chunked strategy's — only the split positions move — so convictions
// stay exact and the pessimistic conviction set matches chunked's.
// With no priors every weight is equal, the guilt-mass median is the
// index midpoint, and the strategy degenerates to chunked.
type bayesStrategy struct{}

func (bayesStrategy) Name() string { return "bayes" }

// bayesWeights converts per-query failure probabilities into additive
// guilt-mass weights: w = -log(1 - p), so a range's total weight is
// the -log of the probability that the whole range survives its
// optimistic test.
func bayesWeights(p Prober, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		q := 1 - p.PFail(i, i+1)
		if q < 0.02 {
			q = 0.02
		}
		w[i] = -math.Log(q)
	}
	return w
}

// bayesSplit places the split point of [lo, hi) at the guilt-mass
// median: the end of the largest prefix whose mass is at most half
// the range's total, clamped so both parts are non-empty. A dominant
// suspect — one query carrying more than half the mass — therefore
// lands at the head of the right part: the whole likely-safe prefix
// tests as one chunk, and the suspect is one singleton test from
// conviction. With uniform weights (no priors) every prefix of
// length floor(n/2) holds at most half the mass, so the split is
// chunked's floor midpoint exactly; the comparison carries a relative
// tolerance so that exact-tie prefixes are kept rather than decided
// by float summation order.
func bayesSplit(w []float64, lo, hi int) int {
	total := 0.0
	for _, x := range w[lo:hi] {
		total += x
	}
	if total <= 0 {
		return (lo + hi) / 2
	}
	mass := 0.0
	mid := lo
	for k := lo; k < hi; k++ {
		if (mass+w[k])*2 > total*(1+1e-9) {
			break
		}
		mass += w[k]
		mid = k + 1
	}
	if mid <= lo {
		mid = lo + 1
	}
	if mid >= hi {
		mid = hi - 1
	}
	return mid
}

// Solve runs the chunked recursion (including the Fig. 2 knownBad
// deduction) with guilt-mass split points.
func (s bayesStrategy) Solve(p Prober, n int) (oraql.Seq, error) {
	decided := make(oraql.Seq, n)
	w := bayesWeights(p, n)
	var solve func(lo, hi int, knownBad bool) (bool, error)
	solve = func(lo, hi int, knownBad bool) (bool, error) {
		if lo >= hi {
			return true, nil
		}
		if !knownBad {
			cand := decided.Clone()
			for i := lo; i < hi; i++ {
				cand[i] = true
			}
			ok, err := p.Test(p.Pad(cand[:hi]), s.specs(p, decided, w, lo, hi)...)
			if err != nil {
				return false, err
			}
			if ok {
				copy(decided[lo:hi], cand[lo:hi])
				return true, nil
			}
		}
		if hi-lo == 1 {
			decided[lo] = false // dangerous query pinned
			p.Logf("query %d must stay pessimistic", lo)
			return false, nil
		}
		mid := bayesSplit(w, lo, hi)
		leftAll, err := solve(lo, mid, false)
		if err != nil {
			return false, err
		}
		// An entirely-optimistic left part proves the dangerous query
		// sits on the right: skip the right's whole-range test.
		if _, err := solve(mid, hi, leftAll); err != nil {
			return false, err
		}
		return false, nil
	}
	if _, err := solve(0, n, true); err != nil {
		return nil, err
	}
	return decided, nil
}

// specs mirrors the chunked strategy's speculative candidates with
// guilt-mass splits: the fail path descends the left spine, plus the
// right part under the assumption the whole left part stays
// pessimistic; with priors, candidates are ordered by estimated
// consumption probability.
func (s bayesStrategy) specs(p Prober, decided oraql.Seq, w []float64, lo, hi int) []oraql.Seq {
	if p.Workers() <= 1 || hi-lo <= 1 {
		return nil
	}
	var specs []oraql.Seq
	var scores []float64
	prob := 1.0 // P(every ancestor range test failed)
	for l, h := lo, hi; h-l > 1 && len(specs) < p.Workers()-1; {
		m := bayesSplit(w, l, h)
		cand := decided.Clone()
		for i := l; i < m; i++ {
			cand[i] = true
		}
		prob *= p.PFail(l, h)
		specs = append(specs, p.Pad(cand[:m]))
		scores = append(scores, prob)
		h = m
	}
	if mid := bayesSplit(w, lo, hi); len(specs) < p.Workers()-1 && hi-mid >= 1 {
		cand := decided.Clone()
		for i := mid; i < hi; i++ {
			cand[i] = true
		}
		specs = append(specs, p.Pad(cand[:hi]))
		// Consumed when [lo,hi) failed and its left part failed too.
		scores = append(scores, p.PFail(lo, hi)*p.PFail(lo, mid))
	}
	if p.HasPriors() {
		ord := make([]int, len(specs))
		for i := range ord {
			ord[i] = i
		}
		sort.SliceStable(ord, func(a, b int) bool { return scores[ord[a]] > scores[ord[b]] })
		sorted := make([]oraql.Seq, len(specs))
		for i, j := range ord {
			sorted[i] = specs[j]
		}
		specs = sorted
	}
	return specs
}

// linearStrategy flips one query at a time, left to right: n tests,
// no range deductions. It exists as the diagnostic baseline — its test
// count is the worst case every bisection strategy is measured against
// — and as the simplest template for new registered strategies.
type linearStrategy struct{}

func (linearStrategy) Name() string { return "linear" }

func (linearStrategy) Solve(p Prober, n int) (oraql.Seq, error) {
	decided := make(oraql.Seq, n)
	for i := 0; i < n; i++ {
		cand := decided.Clone()
		cand[i] = true
		var specs []oraql.Seq
		if p.Workers() > 1 && i+1 < n {
			// The fail-path successor: bit i stays pessimistic, bit i+1
			// tried next.
			next := decided.Clone()
			next[i+1] = true
			specs = append(specs, p.Pad(next[:i+2]))
		}
		ok, err := p.Test(p.Pad(cand[:i+1]), specs...)
		if err != nil {
			return nil, err
		}
		if ok {
			decided[i] = true
		} else {
			p.Logf("query %d must stay pessimistic", i)
		}
	}
	return decided, nil
}
