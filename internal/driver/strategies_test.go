package driver

import (
	"math"
	"testing"

	"github.com/oraql/go-oraql/internal/oraql"
)

// fakeProber is a Prober over a fixed priors table, for strategy unit
// tests that need no compilation. Pad is the identity, so candidates
// stay distinguishable by length.
type fakeProber struct {
	priors  []float64
	workers int
	has     bool
}

func (f *fakeProber) Test(seq oraql.Seq, specs ...oraql.Seq) (bool, error) { return true, nil }
func (f *fakeProber) Pad(decided oraql.Seq) oraql.Seq                      { return decided.Clone() }
func (f *fakeProber) Workers() int                                         { return f.workers }
func (f *fakeProber) HasPriors() bool                                      { return f.has }
func (f *fakeProber) Logf(format string, args ...any)                      {}

func (f *fakeProber) PFail(lo, hi int) float64 {
	allOK := 1.0
	for i := lo; i < hi; i++ {
		p := 0.5
		if i < len(f.priors) {
			p = f.priors[i]
		}
		allOK *= 1 - p
	}
	return 1 - allOK
}

// The chunked strategy's speculative candidates must be ordered by
// estimated consumption probability when priors are available: the
// score of a left-spine candidate is the product of its ancestors'
// failure probabilities, and the right-half candidate's score is
// PFail(lo,hi)*PFail(lo,mid) — it is consumed exactly when the whole
// range failed AND the left half failed (an optimistic left half
// skips the right's whole-range test via the Fig. 2 deduction).
//
// This pins the score math: with a hot suspect at index 6 of [0, 8),
// the left-half candidate (very likely consumed: the whole range is
// nearly sure to fail) must come first, and the deepest left-spine
// candidate (needs three ancestor failures through safe territory)
// must come last. The right-half candidate ties with the left-quarter
// candidate by construction — identical products — and the ordering
// is documented-stable, keeping the spine candidate first.
func TestChunkedSpecsConsumptionOrdering(t *testing.T) {
	priors := make([]float64, 8)
	for i := range priors {
		priors[i] = 0.05
	}
	priors[6] = 0.9
	f := &fakeProber{priors: priors, workers: 16, has: true}
	decided := make(oraql.Seq, 8)

	specs := chunkedStrategy{}.specs(f, decided, 0, 8)
	want := []int{4, 2, 8, 1} // left half, left quarter, right half, left eighth
	if len(specs) != len(want) {
		t.Fatalf("got %d speculative candidates, want %d", len(specs), len(want))
	}
	for i, s := range specs {
		if len(s) != want[i] {
			lens := make([]int, len(specs))
			for j := range specs {
				lens[j] = len(specs[j])
			}
			t.Fatalf("candidate order by length = %v, want %v", lens, want)
		}
	}
}

// Without priors the candidates keep construction order — the left
// spine outside-in, then the right half — because PFail is
// uninformative and reordering would only churn the engine's
// speculation slots.
func TestChunkedSpecsNaturalOrderWithoutPriors(t *testing.T) {
	f := &fakeProber{workers: 16, has: false}
	decided := make(oraql.Seq, 8)
	specs := chunkedStrategy{}.specs(f, decided, 0, 8)
	want := []int{4, 2, 1, 8}
	if len(specs) != len(want) {
		t.Fatalf("got %d speculative candidates, want %d", len(specs), len(want))
	}
	for i, s := range specs {
		if len(s) != want[i] {
			t.Fatalf("candidate %d has length %d, want %d", i, len(s), want[i])
		}
	}
}

func TestBayesSplit(t *testing.T) {
	cases := []struct {
		name   string
		w      []float64
		lo, hi int
		want   int
	}{
		{"uniform weights fall back to the index midpoint", []float64{1, 1, 1, 1}, 0, 4, 2},
		{"zero weights fall back to the index midpoint", []float64{0, 0, 0, 0, 0, 0}, 0, 6, 3},
		{"dominant suspect splits immediately before it", []float64{0.1, 0.1, 5, 0.1}, 0, 4, 2},
		{"dominant suspect at lo clamps to lo+1", []float64{5, 0.1, 0.1}, 0, 3, 1},
		{"dominant suspect at hi-1 keeps the right non-empty", []float64{0.1, 0.1, 5}, 0, 3, 2},
		{"subrange respects lo/hi bounds", []float64{9, 9, 1, 1, 1, 1}, 2, 6, 4},
	}
	for _, c := range cases {
		if got := bayesSplit(c.w, c.lo, c.hi); got != c.want {
			t.Errorf("%s: bayesSplit(%v, %d, %d) = %d, want %d", c.name, c.w, c.lo, c.hi, got, c.want)
		}
	}
}

func TestBayesWeights(t *testing.T) {
	f := &fakeProber{priors: []float64{0.05, 0.5, 0.999}, has: true}
	w := bayesWeights(f, 3)
	if got, want := w[0], -math.Log(0.95); math.Abs(got-want) > 1e-12 {
		t.Errorf("w[0] = %g, want %g", got, want)
	}
	if got, want := w[1], -math.Log(0.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("w[1] = %g, want %g", got, want)
	}
	// Near-certain failure clamps the survival probability at 0.02 so
	// one query can never carry unbounded mass.
	if got, want := w[2], -math.Log(0.02); math.Abs(got-want) > 1e-12 {
		t.Errorf("w[2] = %g, want %g (clamped)", got, want)
	}
}

// With uniform (absent) priors every split lands on the index
// midpoint, so bayes must issue exactly the chunked test sequence.
func TestBayesDegeneratesToChunkedWithoutPriors(t *testing.T) {
	guilty := map[int]bool{3: true, 11: true}
	run := func(s Strategy) []string {
		rec := &recordingProber{guilty: guilty, n: 16}
		seq, err := s.Solve(rec, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			if seq[i] == guilty[i] {
				t.Fatalf("%s: bit %d decided %v with guilty=%v", s.Name(), i, seq[i], guilty[i])
			}
		}
		return rec.tests
	}
	ch, by := run(Chunked), run(Bayes)
	if len(ch) != len(by) {
		t.Fatalf("test counts differ: chunked %d, bayes %d", len(ch), len(by))
	}
	for i := range ch {
		if ch[i] != by[i] {
			t.Fatalf("test %d differs:\nchunked: %s\nbayes:   %s", i, ch[i], by[i])
		}
	}
}

// recordingProber answers Test from a guilty set — a candidate fails
// iff it flips a guilty query optimistic — and records the sequences
// tested.
type recordingProber struct {
	guilty map[int]bool
	n      int
	tests  []string
}

func (r *recordingProber) Test(seq oraql.Seq, specs ...oraql.Seq) (bool, error) {
	r.tests = append(r.tests, seq.String())
	for i, b := range seq {
		if b && r.guilty[i] {
			return false, nil
		}
	}
	return true, nil
}

func (r *recordingProber) Pad(decided oraql.Seq) oraql.Seq {
	out := make(oraql.Seq, r.n)
	copy(out, decided)
	return out
}

func (r *recordingProber) Workers() int                    { return 1 }
func (r *recordingProber) HasPriors() bool                 { return false }
func (r *recordingProber) Logf(format string, args ...any) {}

func (r *recordingProber) PFail(lo, hi int) float64 {
	return 1 - math.Pow(0.5, float64(hi-lo))
}
