package driver

// IR feature scoring: a static per-query estimate of the probability
// that an optimistic (no-alias) answer breaks the program, computed
// from the query's own shape before any test runs. The estimate is
// the cold-start prior for the bayes strategy's ranking and the
// pseudo-count base that persisted verdict history (per-function
// verdicts, warehouse shape frequencies) updates — see persist.go.
//
// The model is a hand-weighted logistic over structural features of
// the two memory locations: the underlying objects the pointers
// derive from (distinct stack slots cannot alias; arguments can alias
// anything), the depth of the address-arithmetic chains (a[i] vs
// a[i+1] — GEPs off one base — is the canonical dangerous query),
// TBAA tags, access types, and the enclosing function's size. Scores
// are deliberately kept inside [0.05, 0.95]: features rank, they
// never pin — convictions always come from failed tests.

import (
	"math"

	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/oraql"
)

// objClass is the feature-level classification of a pointer's
// underlying object, mirroring the location classes the warehouse
// shapes queries by (warehouse.locClass) but computed structurally.
type objClass int

const (
	objUnknown objClass = iota
	objAlloca           // a stack slot local to the function
	objGlobal           // a module global
	objArg              // a function parameter (may alias anything inbound)
	objNoAliasArg       // a parameter carrying the noalias attribute
	objCall             // a call result (fresh or escaped, can't tell)
	objMerge            // phi/select — control-dependent provenance
	objIndirect         // loaded from memory — arbitrary provenance
)

// baseObject walks GEP chains to the underlying object and reports
// the chain depth. It stops at the first non-GEP: that value is the
// provenance the aliasing verdict hinges on.
func baseObject(v ir.Value) (ir.Value, int) {
	depth := 0
	for {
		in, ok := v.(*ir.Instr)
		if !ok || in.Op != ir.OpGEP || len(in.Operands) == 0 {
			return v, depth
		}
		v = in.Operands[0]
		depth++
	}
}

func classify(v ir.Value) objClass {
	switch b := v.(type) {
	case *ir.Global:
		return objGlobal
	case *ir.Arg:
		if b.NoAlias {
			return objNoAliasArg
		}
		return objArg
	case *ir.Instr:
		switch b.Op {
		case ir.OpAlloca:
			return objAlloca
		case ir.OpCall:
			return objCall
		case ir.OpPhi, ir.OpSelect:
			return objMerge
		case ir.OpLoad:
			return objIndirect
		}
	}
	return objUnknown
}

// pairRisk scores the object-class pair: the additive logit
// contribution of where the two pointers come from.
func pairRisk(a, b objClass, sameBase bool) float64 {
	if sameBase {
		// Same underlying object, different offsets: exactly the
		// loop-carried a[i]/a[i+1] shape the paper's guilty queries
		// take. Strongly risky.
		return 2.0
	}
	if a == objNoAliasArg || b == objNoAliasArg {
		return -2.0
	}
	// Order-normalize so (alloca, global) == (global, alloca).
	if a > b {
		a, b = b, a
	}
	switch {
	case a == objAlloca && b == objAlloca:
		return -2.0 // distinct stack slots never alias
	case a == objAlloca && b == objGlobal:
		return -1.75
	case a == objGlobal && b == objGlobal:
		return -1.5 // distinct globals
	case a == objArg && b == objArg:
		return 1.0 // two unconstrained parameters routinely alias
	case a == objAlloca && b == objArg:
		return -0.75 // an inbound pointer can't name a local slot (unless escaped)
	case a == objGlobal && b == objArg:
		return 0.5 // callers do pass globals
	default:
		// merges, loads, calls, unknowns: provenance opaque.
		return 0.75
	}
}

// featureScore is the logistic estimate for one query.
func featureScore(rec *oraql.QueryRecord, funcSize int) float64 {
	baseA, depthA := baseObject(rec.A.Ptr)
	baseB, depthB := baseObject(rec.B.Ptr)
	sameBase := baseA != nil && baseB != nil && baseA.VID() == baseB.VID()
	logit := pairRisk(classify(baseA), classify(baseB), sameBase)

	// Address-arithmetic depth: computed indices are where optimizers
	// mis-judge dependences; each GEP hop adds a little risk, capped.
	if d := depthA + depthB; d > 0 {
		if d > 4 {
			d = 4
		}
		logit += 0.15 * float64(d)
	}
	// TBAA: distinct type tags on both accesses argue against aliasing;
	// matching tags argue (weakly) for it.
	if rec.A.TBAA != "" && rec.B.TBAA != "" {
		if rec.A.TBAA != rec.B.TBAA {
			logit -= 1.0
		} else {
			logit += 0.25
		}
	}
	// Access types: loads/stores of different result types rarely
	// describe the same bytes.
	if ai, bi := rec.A.Instr, rec.B.Instr; ai != nil && bi != nil &&
		ai.Ty != nil && bi.Ty != nil && ai.Ty != bi.Ty {
		logit -= 0.5
	}
	// Function size: more instructions means more interleaved accesses
	// between the two and more transformations acting on the answer.
	if funcSize > 0 {
		s := float64(funcSize)
		if s > 512 {
			s = 512
		}
		logit += 0.25 * s / 512
	}
	p := 1 / (1 + math.Exp(-logit))
	if p < 0.05 {
		p = 0.05
	}
	if p > 0.95 {
		p = 0.95
	}
	return p
}

// funcSizes counts live instructions per function of a module.
func funcSizes(mod *ir.Module) map[string]int {
	if mod == nil {
		return nil
	}
	sizes := make(map[string]int, len(mod.Funcs))
	for _, f := range mod.Funcs {
		n := 0
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
		sizes[f.Name] = n
	}
	return sizes
}

// seedFeaturePriors fills priors[rec.Index] with the per-query feature
// estimate for every record and returns how many were scored. mod is
// the baseline host module (function sizes); nil degrades gracefully.
func seedFeaturePriors(recs []*oraql.QueryRecord, mod *ir.Module, priors []float64) int {
	sizes := funcSizes(mod)
	scored := 0
	for _, rec := range recs {
		if rec.Index < 0 || rec.Index >= len(priors) {
			continue
		}
		if rec.A.Ptr == nil || rec.B.Ptr == nil {
			continue
		}
		priors[rec.Index] = featureScore(rec, sizes[rec.Func])
		scored++
	}
	return scored
}
