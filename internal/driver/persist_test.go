package driver

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/pipeline"
)

// helloEditedSrc is helloSrc with an extra, alias-hazard-free helper
// function appended after main: main's body — including its !dbg line
// numbers, hence its content hash — is unchanged, so a reprobe should
// inherit main's per-query verdicts from the first campaign.
const helloEditedSrc = `
int main() {
	double a[64];
	for (int i = 0; i < 64; i++) {
		a[i] = (double)i * 2.0;
	}
	for (int i = 0; i < 63; i++) {
		a[i+1] = a[i] * 0.5 + a[i+1];
	}
	double s = 0.0;
	for (int i = 0; i < 64; i++) {
		s = s + a[i];
	}
	print("sum=", s, "\n");
	return 0;
}
double scale(double x) {
	return x * 3.0;
}
`

func probeWithCache(t *testing.T, src string, cache *diskcache.Store) *Result {
	t.Helper()
	var log bytes.Buffer
	spec := &BenchSpec{
		Name:    "hello",
		Compile: pipeline.Config{Source: src},
		Cache:   cache,
		Log:     &log,
	}
	res, err := Probe(spec)
	if err != nil {
		t.Fatalf("probe: %v\n%s", err, log.String())
	}
	t.Logf("\n%s", log.String())
	return res
}

// A repeated campaign on an unchanged program must replay every test
// verdict from the persistent campaign state: zero tests actually run,
// same final sequence.
func TestWarmCampaignReplaysFromDisk(t *testing.T) {
	cache, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cold := probeWithCache(t, helloSrc, cache)
	if cold.TestsDisk != 0 {
		t.Fatalf("cold campaign claims %d disk tests", cold.TestsDisk)
	}
	// The cold campaign's final binary may coincide with the baseline
	// (mostly-pessimistic final sequence), replaying the run it just
	// stored; but its baseline run has nothing to replay from.
	if cold.RunsReplayed > 1 {
		t.Fatalf("cold campaign claims %d replayed runs, want <= 1", cold.RunsReplayed)
	}
	warm := probeWithCache(t, helloSrc, cache)
	if warm.TestsRun != 0 {
		t.Fatalf("warm campaign ran %d tests; want 0 (all from disk)", warm.TestsRun)
	}
	if warm.TestsDisk == 0 {
		t.Fatal("warm campaign consumed no disk outcomes")
	}
	// Both interpreter runs (baseline and final) replay from the
	// run-replay layer with identical results.
	if warm.RunsReplayed != 2 {
		t.Fatalf("warm campaign replayed %d runs, want 2", warm.RunsReplayed)
	}
	if got, want := warm.FinalSeq.String(), cold.FinalSeq.String(); got != want {
		t.Fatalf("warm final seq %q != cold %q", got, want)
	}
	if warm.Final.Run.Stdout != cold.Final.Run.Stdout {
		t.Fatalf("warm output %q != cold %q", warm.Final.Run.Stdout, cold.Final.Run.Stdout)
	}
	if warm.Final.Run.Instrs != cold.Final.Run.Instrs ||
		warm.Baseline.Run.Instrs != cold.Baseline.Run.Instrs {
		t.Fatalf("replayed instruction counts diverge: warm %d/%d, cold %d/%d",
			warm.Baseline.Run.Instrs, warm.Final.Run.Instrs,
			cold.Baseline.Run.Instrs, cold.Final.Run.Instrs)
	}
}

// guiltySet renders a program-independent view of the convicted
// queries (pass + function + both location dumps).
func guiltySet(res *Result) map[string]int {
	out := map[string]int{}
	for _, rec := range res.GuiltyQueries() {
		a, b := rec.LocDescriptions()
		out[rec.Pass+"|"+rec.Func+"|"+a+"|"+b]++
	}
	return out
}

// Reprobing an edited program must seed its bisection from the
// unchanged functions' persisted verdicts: strictly fewer tests and
// compiles than probing the edit from scratch, with the same final
// guilty-query set.
func TestIncrementalReprobeOfEditedProgram(t *testing.T) {
	cache, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Campaign 1 populates the verdict history for main's content hash.
	probeWithCache(t, helloSrc, cache)

	// Scratch probe of the edited program (separate store: no history).
	scratchCache, err := diskcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	scratch := probeWithCache(t, helloEditedSrc, scratchCache)

	// Seeded reprobe of the edited program against the shared store.
	seeded := probeWithCache(t, helloEditedSrc, cache)

	if seeded.Compiles >= scratch.Compiles {
		t.Fatalf("seeded reprobe compiles %d, want < scratch %d", seeded.Compiles, scratch.Compiles)
	}
	if st, sc := seeded.TestsRun+seeded.TestsCached, scratch.TestsRun+scratch.TestsCached; st >= sc {
		t.Fatalf("seeded reprobe consumed %d tests, want < scratch %d", st, sc)
	}
	sg, cg := guiltySet(seeded), guiltySet(scratch)
	if len(sg) != len(cg) {
		t.Fatalf("guilty sets differ: seeded %v vs scratch %v", sg, cg)
	}
	for k, n := range cg {
		if sg[k] != n {
			t.Fatalf("guilty sets differ at %q: seeded %d vs scratch %d", k, sg[k], n)
		}
	}
	if seeded.Final.Run.Stdout != scratch.Final.Run.Stdout {
		t.Fatalf("seeded output %q != scratch %q", seeded.Final.Run.Stdout, scratch.Final.Run.Stdout)
	}
	if !strings.Contains(seeded.Final.Run.Stdout, "sum=") {
		t.Fatalf("unexpected output %q", seeded.Final.Run.Stdout)
	}
}

// PFail composes per-query failure probabilities into a range
// estimate: the range fails when any member fails, so
// PFail(lo, hi) = 1 - prod(1 - p_i), with 0.5 for every query the
// priors table does not cover. The table mixes known and unknown
// positions to pin that composition.
func TestPFailMixedKnownUnknownPriors(t *testing.T) {
	st := &state{priors: []float64{0.2, 0.8}} // queries 2+ unknown
	cases := []struct {
		name   string
		lo, hi int
		want   float64
	}{
		{"single known low", 0, 1, 0.2},
		{"single known high", 1, 2, 0.8},
		{"two known combine", 0, 2, 1 - 0.8*0.2},
		{"single unknown defaults to 0.5", 2, 3, 0.5},
		{"known and unknown mix", 0, 3, 1 - 0.8*0.2*0.5},
		{"unknown pair", 2, 4, 1 - 0.5*0.5},
		{"empty range never fails", 1, 1, 0},
	}
	for _, c := range cases {
		if got := st.PFail(c.lo, c.hi); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: PFail(%d, %d) = %g, want %g", c.name, c.lo, c.hi, got, c.want)
		}
	}

	// With no priors loaded every estimate is 0.5-based and HasPriors
	// reports false — strategies then skip prior-driven ordering.
	bare := &state{}
	if bare.HasPriors() {
		t.Error("state without priors claims HasPriors")
	}
	if got := bare.PFail(0, 2); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("unseeded PFail(0, 2) = %g, want 0.75", got)
	}
	if !st.HasPriors() {
		t.Error("state with priors denies HasPriors")
	}
}
