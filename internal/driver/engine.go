package driver

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/verify"
)

// testOutcome is one candidate sequence's compile+run+verify verdict.
// It is a pure function of the candidate (compilation is deterministic,
// and the exe-hash cache only ever replays the verify result of a
// bit-identical binary), which is what makes speculative execution safe:
// a result computed ahead of time is the same result the sequential
// driver would have computed on demand.
type testOutcome struct {
	ok       bool
	unique   int  // unique ORAQL query count of this compile
	didRun   bool // false when the verdict came from the exe-hash cache
	fromDisk bool // verdict replayed from the persistent campaign state
	err      error
}

// testCall is one in-flight or completed test, single-flighted by the
// candidate sequence: duplicate requests wait for the first instead of
// re-running.
type testCall struct {
	key         string
	done        chan struct{}
	out         testOutcome
	speculative bool
	canceled    bool
	cancel      context.CancelFunc
}

// exeEntry single-flights verification by executable hash: a test whose
// binary hash matches an in-flight run waits for that run's verdict
// instead of executing the bit-identical binary again.
type exeEntry struct {
	done     chan struct{}
	v        verify.Result
	canceled bool
}

// engine executes candidate tests for the probing driver on a bounded
// worker pool. The decision loop stays strictly sequential and
// deterministic; the engine adds two layers the loop consults:
//
//   - a single-flight candidate map, so a speculatively prefetched test
//     is joined (not repeated) when the decision loop requests it;
//   - a concurrency-safe, single-flight executable-hash cache, so
//     bit-identical binaries are verified exactly once.
//
// Speculative calls carry a context and are cancelled as losers the
// moment a consumed test succeeds (success flips decided bits, which
// stales every candidate built from the previous decided state).
type engine struct {
	// ctx is the probe-wide context: consumed tests run directly under
	// it, speculative tests under children of it, so cancelling the
	// probe stops every in-flight compilation.
	ctx     context.Context
	spec    *BenchSpec
	workers int
	campID  string // persistent campaign identity ("" = no disk outcomes)
	sem     chan struct{}
	wg      sync.WaitGroup

	mu         sync.Mutex
	calls      map[string]*testCall
	exe        map[string]*exeEntry
	optRecords []*oraql.QueryRecord // query stream of the empty-seq compile

	compiles     atomic.Int64
	specLaunched atomic.Int64
	specConsumed atomic.Int64
	diskTests    atomic.Int64

	// specDepth bounds in-flight *compile* speculation, adapting to the
	// observed hit/waste rate: it starts at min(workers-1, cores-1) —
	// zero on a single-core host, where a speculative compile only
	// steals cycles from the consumed test — shrinks when speculation is
	// cancelled unconsumed, and grows (up to workers-1) when consumed.
	// The gate applies to compiles only: a candidate whose outcome is
	// already on disk completes its speculative call synchronously in
	// prefetch, costing neither a compile nor a worker slot, so it
	// bypasses the depth bound (and, being free, never feeds the
	// adaptive +1 evidence that compile-speculation pays).
	specDepth  atomic.Int64
	specActive atomic.Int64
}

// innerWorkers splits the machine between outer (probe) and inner
// (intra-compile) parallelism: with outer workers already saturating
// cores, each compilation gets GOMAXPROCS/outer workers, at least one.
func innerWorkers(outer int) int {
	if outer <= 0 {
		outer = 1
	}
	if w := runtime.GOMAXPROCS(0) / outer; w > 1 {
		return w
	}
	return 1
}

func newEngine(ctx context.Context, spec *BenchSpec, campID string) *engine {
	w := spec.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	e := &engine{
		ctx:     ctx,
		spec:    spec,
		workers: w,
		campID:  campID,
		sem:     make(chan struct{}, w),
		calls:   map[string]*testCall{},
		exe:     map[string]*exeEntry{},
	}
	depth := int64(w - 1)
	if c := int64(runtime.GOMAXPROCS(0) - 1); c < depth {
		depth = c
	}
	if depth < 0 {
		depth = 0
	}
	e.specDepth.Store(depth)
	return e
}

// adjustDepth moves the speculation depth by delta within [0, workers-1].
func (e *engine) adjustDepth(delta int64) {
	max := int64(e.workers - 1)
	for {
		cur := e.specDepth.Load()
		next := cur + delta
		if next < 0 {
			next = 0
		}
		if next > max {
			next = max
		}
		if next == cur || e.specDepth.CompareAndSwap(cur, next) {
			return
		}
	}
}

// takeOptRecords hands the empty-sequence compile's query records to
// the driver (once) for verdict seeding.
func (e *engine) takeOptRecords() []*oraql.QueryRecord {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.optRecords
	e.optRecords = nil
	return r
}

// get returns the outcome for a candidate, joining an in-flight or
// completed speculative call when one exists, else testing inline. The
// consumed call is removed from the single-flight map so that a later
// identical candidate re-tests (and is then served by the exe-hash
// cache), exactly like the sequential driver.
func (e *engine) get(seq oraql.Seq) testOutcome {
	key := seq.String()
	for {
		e.mu.Lock()
		if c, ok := e.calls[key]; ok {
			e.mu.Unlock()
			<-c.done
			if c.canceled {
				continue // cancelled speculation: re-issue inline
			}
			e.consume(c)
			if c.speculative {
				e.specConsumed.Add(1)
				if !c.out.fromDisk {
					// Compile speculation paid off: widen. Disk-served
					// outcomes cost nothing, so they are no evidence that
					// spending a worker on a speculative compile pays.
					e.adjustDepth(1)
				}
			}
			if c.out.fromDisk {
				e.diskTests.Add(1)
			}
			return c.out
		}
		c := &testCall{key: key, done: make(chan struct{})}
		e.calls[key] = c
		e.mu.Unlock()
		c.out = e.run(e.ctx, seq)
		close(c.done)
		e.consume(c)
		if c.out.fromDisk {
			e.diskTests.Add(1)
		}
		return c.out
	}
}

// prefetch speculatively launches a candidate test on the worker pool.
// It is a no-op when probing sequentially, when the adaptive depth
// bound is reached, or when the candidate is already in flight. The
// driver passes candidates in descending consumption-probability
// order, so depth throttling drops the least promising ones first.
//
// The depth bound gates compile speculation only: when it is reached
// (including the permanent depth 0 of a single-core host) a candidate
// whose outcome is already in the persistent campaign state is still
// registered as a completed speculative call — a warm prefetch costs
// no compile and no worker slot, so priors keep paying off even where
// compile speculation never engages.
func (e *engine) prefetch(seq oraql.Seq) {
	if e.workers <= 1 {
		return
	}
	key := seq.String()
	if e.specActive.Load() >= e.specDepth.Load() {
		e.prefetchFromDisk(key)
		return
	}
	e.mu.Lock()
	if _, ok := e.calls[key]; ok {
		e.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(e.ctx)
	c := &testCall{key: key, done: make(chan struct{}), speculative: true, cancel: cancel}
	e.calls[key] = c
	e.mu.Unlock()
	e.specLaunched.Add(1)
	e.specActive.Add(1)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer e.specActive.Add(-1)
		out := e.run(ctx, seq)
		e.mu.Lock()
		if errors.Is(out.err, context.Canceled) {
			c.canceled = true
			if e.calls[key] == c {
				delete(e.calls, key)
			}
		}
		c.out = out
		e.mu.Unlock()
		if c.canceled {
			e.adjustDepth(-1) // cancelled unconsumed: wasted work, narrow
		}
		close(c.done)
	}()
}

// prefetchFromDisk registers a completed speculative call for a
// candidate whose outcome is already persisted, without taking a
// worker slot. Called when the adaptive depth bound blocks a compile
// prefetch; quietly does nothing without a persistent campaign or on
// a cold candidate.
func (e *engine) prefetchFromDisk(key string) {
	if e.spec.Cache == nil || e.campID == "" {
		return
	}
	o, ok := e.spec.Cache.LoadTestOutcome(diskcache.TestOutcomeKey(e.campID, key))
	if !ok {
		return
	}
	e.mu.Lock()
	if _, dup := e.calls[key]; dup {
		e.mu.Unlock()
		return
	}
	c := &testCall{key: key, done: make(chan struct{}), speculative: true}
	c.out = testOutcome{ok: o.OK, unique: o.Unique, fromDisk: true}
	close(c.done)
	e.calls[key] = c
	e.mu.Unlock()
	e.specLaunched.Add(1)
}

// cancelSpeculative cancels every outstanding speculative call. Called
// when a consumed test succeeds: successes flip decided bits, so every
// candidate speculated from the previous decided state is a loser.
func (e *engine) cancelSpeculative() {
	e.mu.Lock()
	for _, c := range e.calls {
		if c.speculative && c.cancel != nil {
			c.cancel()
		}
	}
	e.mu.Unlock()
}

// shutdown cancels outstanding speculation and waits for the worker
// goroutines to drain.
func (e *engine) shutdown() {
	e.cancelSpeculative()
	e.wg.Wait()
}

// consume removes a finished call from the single-flight map.
func (e *engine) consume(c *testCall) {
	e.mu.Lock()
	if e.calls[c.key] == c {
		delete(e.calls, c.key)
	}
	e.mu.Unlock()
}

// run compiles and verifies one candidate on a worker slot. ctx is
// threaded into the compilation and checked again before executing, so
// a cancelled speculative test stops mid-pipeline. With a persistent
// campaign (BenchSpec.Cache + content-hash identity), outcomes are
// consulted on disk first — a warm campaign replays every test without
// compiling — and persisted after each fresh verdict.
func (e *engine) run(ctx context.Context, seq oraql.Seq) testOutcome {
	var dkey string
	if e.spec.Cache != nil && e.campID != "" {
		dkey = diskcache.TestOutcomeKey(e.campID, seq.String())
		if o, ok := e.spec.Cache.LoadTestOutcome(dkey); ok {
			// Counted into diskTests at consumption (get), so the stat
			// stays a subset of the tests the decision loop consumed.
			return testOutcome{ok: o.OK, unique: o.Unique, fromDisk: true}
		}
	}
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	if ctx.Err() != nil {
		return testOutcome{err: ctx.Err()}
	}
	opts := e.spec.ORAQL
	opts.Seq = seq
	cfg := e.spec.Compile
	cfg.Name = e.spec.Name
	cfg.ORAQL = &opts
	if cfg.CompileWorkers == 0 {
		// One global budget: outer probe workers x inner compile
		// workers should not exceed the machine. ORAQL compiles run
		// sequentially regardless (the responder is order-dependent);
		// the split covers blocking-mode and future non-ORAQL tests.
		cfg.CompileWorkers = innerWorkers(e.workers)
	}
	cr, err := pipeline.CompileContext(ctx, cfg)
	if err != nil {
		return testOutcome{err: err}
	}
	e.compiles.Add(1)
	if len(seq) == 0 {
		// The fully-optimistic compile's query stream feeds both the
		// persisted-verdict seeding and the IR feature extraction, so it
		// is captured with or without a persistent campaign.
		e.mu.Lock()
		if e.optRecords == nil {
			e.optRecords = cr.Records()
		}
		e.mu.Unlock()
	}
	out := testOutcome{unique: cr.ORAQLStats().Unique()}
	if e.spec.DisableExeCache {
		if ctx.Err() != nil {
			return testOutcome{err: ctx.Err()}
		}
		out.ok = e.verifyRun(cr)
		out.didRun = true
		e.storeOutcome(dkey, out)
		return out
	}

	hash := cr.ExeHash()
	for {
		e.mu.Lock()
		ent, ok := e.exe[hash]
		if !ok {
			ent = &exeEntry{done: make(chan struct{})}
			e.exe[hash] = ent
		}
		e.mu.Unlock()
		if ok {
			// Completed or in-flight run of a bit-identical binary: wait
			// for its verdict instead of re-running.
			<-ent.done
			if ent.canceled {
				continue // owner was cancelled mid-flight; re-claim
			}
			out.ok = ent.v.OK
			e.storeOutcome(dkey, out)
			return out
		}
		if ctx.Err() != nil {
			// Don't publish a cancelled entry: remove it so the next test
			// of this binary runs for real.
			e.mu.Lock()
			delete(e.exe, hash)
			ent.canceled = true
			e.mu.Unlock()
			close(ent.done)
			return testOutcome{err: ctx.Err()}
		}
		ent.v = verify.Result{OK: e.verifyRun(cr)}
		close(ent.done)
		out.ok = ent.v.OK
		out.didRun = true
		e.storeOutcome(dkey, out)
		return out
	}
}

// storeOutcome persists a fresh test verdict into the campaign state.
func (e *engine) storeOutcome(dkey string, out testOutcome) {
	if dkey == "" || out.err != nil {
		return
	}
	e.spec.Cache.StoreTestOutcome(dkey, diskcache.TestOutcome{OK: out.ok, Unique: out.unique})
}

// verifyRun executes the compiled program and checks its output.
func (e *engine) verifyRun(cr *pipeline.CompileResult) bool {
	rr, runErr := irinterp.Run(cr.Program, e.spec.Run)
	var stdout string
	if rr != nil {
		stdout = rr.Stdout
	}
	return e.spec.Verify.Check(stdout, runErr).OK
}
