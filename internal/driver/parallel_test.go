package driver_test

// Determinism of parallel speculative probing: for every strategy and a
// representative set of application configurations, probing with one
// worker and probing with eight workers must discover the bit-identical
// final sequence, consume the same number of tests, and produce the
// same executable. The package is driver_test (external) because the
// configurations live in internal/apps, which imports internal/driver.

import (
	"fmt"
	"testing"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/driver"
)

func TestParallelProbeIsDeterministic(t *testing.T) {
	configs := []string{"lulesh-seq", "testsnap-openmp", "minigmg-sse", "quicksilver-openmp"}
	strategies := []struct {
		name string
		s    driver.Strategy
	}{
		{"chunked", driver.Chunked},
		{"freqspace", driver.FreqSpace},
	}
	for _, id := range configs {
		cfg := apps.ByID(id)
		if cfg == nil {
			t.Fatalf("unknown app config %q", id)
		}
		for _, strat := range strategies {
			t.Run(fmt.Sprintf("%s/%s", id, strat.name), func(t *testing.T) {
				probe := func(workers int) *driver.Result {
					spec := cfg.Spec()
					spec.Strategy = strat.s
					spec.Workers = workers
					res, err := driver.Probe(spec)
					if err != nil {
						t.Fatalf("Probe(workers=%d): %v", workers, err)
					}
					return res
				}
				seq := probe(1)
				par := probe(8)

				if got, want := par.FinalSeq.String(), seq.FinalSeq.String(); got != want {
					t.Errorf("FinalSeq differs: workers=8 %q, workers=1 %q", got, want)
				}
				if par.FullyOptimistic != seq.FullyOptimistic {
					t.Errorf("FullyOptimistic differs: workers=8 %v, workers=1 %v",
						par.FullyOptimistic, seq.FullyOptimistic)
				}
				// The decision loop consumes the same tests in the same
				// order regardless of worker count; only the run/cached
				// split may shift with speculative timing.
				if got, want := par.TestsRun+par.TestsCached, seq.TestsRun+seq.TestsCached; got != want {
					t.Errorf("consumed tests differ: workers=8 %d, workers=1 %d", got, want)
				}
				if got, want := par.Final.Compile.ExeHash(), seq.Final.Compile.ExeHash(); got != want {
					t.Errorf("final ExeHash differs: workers=8 %s, workers=1 %s", got, want)
				}
				if seq.TestsSpeculated != 0 {
					t.Errorf("sequential probe speculated %d tests, want 0", seq.TestsSpeculated)
				}
				if par.TestsWasted > par.TestsSpeculated {
					t.Errorf("TestsWasted %d exceeds TestsSpeculated %d", par.TestsWasted, par.TestsSpeculated)
				}
			})
		}
	}
}
