package driver

import (
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/warehouse"
)

// Warehouse integration: every campaign that runs with persistent
// state (BenchSpec.Cache) also files its outcome in the forensics
// warehouse, and campaigns with no per-function history fall back to
// the fleet-wide per-shape verdict frequencies accumulated there.

// ingestWarehouse files the finished probe as a warehouse record. The
// record is pure campaign output — content addressing makes repeat
// runs of the same campaign land on the same ID, so re-probing never
// duplicates corpus entries.
func (st *state) ingestWarehouse() {
	w := warehouse.Open(st.spec.Cache)
	if w == nil || st.res.Final == nil {
		return
	}
	strat := st.spec.Strategy
	if strat == nil {
		strat = Chunked
	}
	rec := &warehouse.Record{
		Kind:            warehouse.KindProbe,
		App:             st.spec.Name,
		AAChain:         st.spec.Compile.AAChainCanonical(),
		Strategy:        strat.Name(),
		FinalSeq:        st.res.FinalSeq.String(),
		FullyOptimistic: st.res.FullyOptimistic,
		ExeHash:         st.res.Final.Compile.ExeHash(),
		FuncHashes:      st.res.Baseline.Compile.ContentFuncHashes(),
	}
	for _, r := range st.res.Final.Compile.Records() {
		a, b := r.LocDescriptions()
		rec.Queries = append(rec.Queries, warehouse.QueryVerdict{
			Index: r.Index, Pass: r.Pass, Func: r.Func,
			A: a, B: b, Optimistic: r.Optimistic,
		})
	}
	id, added, err := w.Ingest(rec)
	if err != nil {
		st.logf("%s: warehouse ingest failed: %v", st.spec.Name, err)
		return
	}
	if added {
		st.logf("%s: warehouse record %s filed", st.spec.Name, id[:12])
	}
}

// shapeMaxWeight caps the evidence weight of fleet-wide shape
// statistics in the beta update: shapes generalize across programs,
// so however many observations a shape has accumulated elsewhere, it
// never swamps the per-query feature estimate the way same-program
// verdict history may.
const shapeMaxWeight = 16

// seedShapePriors is the fleet-wide fallback for seedPriors: when no
// per-function verdict history matches (first campaign on a program,
// or every function was edited), update each query's conviction
// probability from the warehouse's per-shape verdict frequencies
// instead. The shape frequency beta-updates the IR feature estimate
// already in priors (weight-capped), so a fresh campaign still orders
// its speculation by what convicted elsewhere. Only priors are seeded
// — never pins: shape statistics are suggestive, not per-query
// evidence.
func (st *state) seedShapePriors(recs []*oraql.QueryRecord, priors []float64) int {
	w := warehouse.Open(st.spec.Cache)
	if w == nil {
		return 0
	}
	hist := w.Load().ShapePriors()
	if hist == nil {
		return 0
	}
	seeded := 0
	for _, rec := range recs {
		if rec.Index < 0 || rec.Index >= len(priors) {
			continue
		}
		a, b := rec.LocDescriptions()
		shape := warehouse.QueryVerdict{Pass: rec.Pass, A: a, B: b}.Shape()
		c, ok := hist[shape]
		if !ok {
			continue
		}
		total := c.Optimistic + c.Pessimistic
		if total == 0 {
			continue
		}
		weight := float64(total)
		if weight > shapeMaxWeight {
			weight = shapeMaxWeight
		}
		freq := float64(c.Pessimistic) / float64(total)
		priors[rec.Index] = clampPrior(
			(priors[rec.Index]*featurePseudoCount + freq*weight) /
				(featurePseudoCount + weight))
		seeded++
	}
	return seeded
}
