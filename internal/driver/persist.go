package driver

import (
	"fmt"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
)

// Campaign persistence (BenchSpec.Cache): the driver stores two
// artifact families in the shared disk cache so later processes skip
// work.
//
//   - Test outcomes, keyed by the campaign identity (baseline module
//     content hashes + check configuration) and the exact candidate
//     sequence. Reprobing an unchanged program replays every test from
//     disk without compiling or running anything.
//
//   - Per-query verdicts, keyed by the *function* content hash and a
//     stable query descriptor (pass + function + both location dumps +
//     occurrence index — deliberately not the sequence position, which
//     shifts with edits). Functions untouched by an edit keep their
//     hash, so their verdicts transfer and seed the next bisection:
//     known-guilty queries are pinned pessimistic, known-safe ones
//     optimistic, and only the genuinely unknown positions are
//     bisected. Verdicts are hints — the final sequence is always
//     re-verified — so a stale hint costs extra tests, never
//     soundness.

// campaignKeys derives the two persistence identities after the
// baseline compilation (which carries the content hashes).
func (st *state) campaignKeys() {
	if st.spec.Cache == nil || st.res.Baseline == nil {
		return
	}
	b := st.res.Baseline.Compile
	if b.Host.ModuleHash == "" {
		return
	}
	c := st.spec.Compile
	r := st.spec.Run
	cfg := fmt.Sprintf("opt=%d|stop=%d|chain=%s|mode=%d|target=%s|funcs=%v|files=%v|threads=%d|ranks=%d|steps=%d|mem=%d",
		c.OptLevel, c.StopAfter, c.AAChainCanonical(),
		st.spec.ORAQL.Mode, st.spec.ORAQL.Target, st.spec.ORAQL.Funcs, st.spec.ORAQL.Files,
		r.NumThreads, r.NumRanks, r.StepLimit, r.MemLimit)
	// checkID excludes the module hashes on purpose: per-function
	// verdicts must survive edits to *other* functions.
	st.checkID = diskcache.Key("check", st.spec.Name, cfg)
	dev := ""
	if b.Device != nil {
		dev = b.Device.ModuleHash
	}
	st.campID = diskcache.Key("campaign", st.checkID, b.Host.ModuleHash, dev)
}

// verdictDescriptors renders the stable per-query descriptors for a
// record stream. Identical query streams (same function content, same
// analysis answers) produce identical descriptors across processes and
// across edits to other functions; the occurrence suffix disambiguates
// repeated (pass, locations) pairs within one function.
func verdictDescriptors(recs []*oraql.QueryRecord) []string {
	occ := map[string]int{}
	out := make([]string, len(recs))
	for i, rec := range recs {
		a, b := rec.LocDescriptions()
		base := rec.Pass + "|" + rec.Func + "|" + a + "|" + b
		out[i] = fmt.Sprintf("%s#%d", base, occ[base])
		occ[base]++
	}
	return out
}

// featurePseudoCount is the strength of the IR feature estimate when
// observed verdict history updates it: the feature score enters the
// beta update as featurePseudoCount virtual observations, so a couple
// of real verdicts already dominate it.
const featurePseudoCount = 2

// clampPrior keeps per-query priors away from certainty: priors order
// and partition the bisection, they never decide it.
func clampPrior(p float64) float64 {
	if p < 0.02 {
		return 0.02
	}
	if p > 0.98 {
		return 0.98
	}
	return p
}

// seedPriors fills st.priors (per-index probability that the query
// must stay pessimistic) and st.pins (persisted known answers) from
// three evidence layers, weakest first:
//
//  1. IR feature scores (features.go) — always available once the
//     fully-optimistic compile's query stream is captured; the
//     cold-start estimate.
//  2. Warehouse per-shape verdict frequencies — fleet-wide history,
//     cross-program; blended over the feature base when no
//     per-function history matched. Priors only, never pins.
//  3. Per-function persisted verdicts — same program, same check;
//     beta-updates the feature base and pins the known answers.
func (st *state) seedPriors() {
	recs := st.eng.takeOptRecords()
	if len(recs) == 0 {
		return
	}
	priors := make([]float64, len(recs))
	for i := range priors {
		priors[i] = 0.5
	}
	var mod *ir.Module
	if st.res.Baseline != nil && st.res.Baseline.Compile != nil && st.res.Baseline.Compile.Host != nil {
		mod = st.res.Baseline.Compile.Host.Module
	}
	if scored := seedFeaturePriors(recs, mod, priors); scored > 0 {
		st.priors = priors
		st.logf("%s: scored %d/%d queries from IR features", st.spec.Name, scored, len(recs))
	}
	if st.spec.Cache == nil || st.checkID == "" {
		return
	}
	descs := verdictDescriptors(recs)
	byHash := map[string]diskcache.FuncVerdicts{}
	pins := make([]int8, len(recs))
	pinned := 0
	hashes := st.res.Baseline.Compile.ContentFuncHashes()
	for i, rec := range recs {
		if rec.Index < 0 || rec.Index >= len(pins) {
			continue
		}
		fh := hashes[rec.Func]
		if fh == "" {
			continue
		}
		fv, ok := byHash[fh]
		if !ok {
			fv = st.spec.Cache.LoadFuncVerdicts(fh, st.checkID)
			byHash[fh] = fv
		}
		c := fv[descs[i]]
		total := c.Optimistic + c.Pessimistic
		if total == 0 {
			continue
		}
		// Beta update: feature estimate as pseudo-counts, observed
		// verdicts on top.
		priors[rec.Index] = clampPrior(
			(priors[rec.Index]*featurePseudoCount + float64(c.Pessimistic)) /
				(featurePseudoCount + float64(total)))
		// Ever convicted -> pin pessimistic (conservative); otherwise
		// always survived -> pin optimistic.
		if c.Pessimistic > 0 {
			pins[rec.Index] = -1
		} else {
			pins[rec.Index] = 1
		}
		pinned++
	}
	if pinned > 0 {
		st.pins, st.priors = pins, priors
		st.logf("%s: seeded %d/%d query verdicts from persisted campaign state", st.spec.Name, pinned, len(recs))
		return
	}
	// No per-function history (first campaign on this program, or every
	// function edited): fall back to the warehouse's fleet-wide verdict
	// frequencies per query shape. Priors only — never pins.
	if seeded := st.seedShapePriors(recs, priors); seeded > 0 {
		st.priors = priors
		st.logf("%s: seeded %d/%d query priors from warehouse shape history", st.spec.Name, seeded, len(recs))
	}
}

// persistVerdicts records the final verified compilation's per-query
// verdicts under the owning functions' content hashes.
func (st *state) persistVerdicts(fin *pipeline.CompileResult) {
	if st.spec.Cache == nil || st.checkID == "" || st.res.Baseline == nil {
		return
	}
	hashes := st.res.Baseline.Compile.ContentFuncHashes()
	if len(hashes) == 0 {
		return
	}
	recs := fin.Records()
	descs := verdictDescriptors(recs)
	byFunc := map[string]map[string]bool{}
	for i, rec := range recs {
		fh := hashes[rec.Func]
		if fh == "" {
			continue
		}
		m := byFunc[fh]
		if m == nil {
			m = map[string]bool{}
			byFunc[fh] = m
		}
		m[descs[i]] = rec.Optimistic
	}
	for fh, obs := range byFunc {
		st.spec.Cache.MergeFuncVerdicts(fh, st.checkID, obs)
	}
}

// PFail estimates the probability that flipping [lo, hi) optimistic
// fails verification, from the per-index priors (0.5 when unknown).
// Part of the Prober interface consumed by speculation-ordering
// strategies.
func (st *state) PFail(lo, hi int) float64 {
	allOK := 1.0
	for i := lo; i < hi; i++ {
		p := 0.5
		if i < len(st.priors) {
			p = st.priors[i]
		}
		allOK *= 1 - p
	}
	return 1 - allOK
}

// seededSolve is the chunked recursion with persisted verdicts applied: pinned
// bits are fixed up front, the hinted candidate (pins applied, unknown
// positions optimistic) is tested first — the common case for a small
// edit, resolving the whole round in one test — and on failure only
// the unknown positions are bisected. Wrong pins surface at the
// round's final verification, which falls back to an unseeded round.
func (st *state) seededSolve(n int) (oraql.Seq, error) {
	decided := make(oraql.Seq, n)
	var unknown []int
	pinned := 0
	for i := 0; i < n; i++ {
		var p int8
		if i < len(st.pins) {
			p = st.pins[i]
		}
		switch {
		case p > 0:
			decided[i] = true
			pinned++
		case p < 0:
			pinned++
		default:
			unknown = append(unknown, i)
		}
	}
	if pinned == 0 {
		return Chunked.Solve(st, n)
	}
	cand := decided.Clone()
	for _, i := range unknown {
		cand[i] = true
	}
	ok, err := st.test(st.pad(cand, st.padLen))
	if err != nil {
		return nil, err
	}
	if ok {
		return cand, nil
	}
	st.logf("%s: hinted candidate failed; bisecting %d unknown queries", st.spec.Name, len(unknown))
	if err := st.solveIndices(decided, unknown); err != nil {
		return nil, err
	}
	return decided, nil
}

// solveIndices runs the chunked recursion over an arbitrary index
// subset, holding every other decided bit fixed.
func (st *state) solveIndices(decided oraql.Seq, idx []int) error {
	var solve func(lo, hi int, knownBad bool) (bool, error)
	solve = func(lo, hi int, knownBad bool) (bool, error) {
		if lo >= hi {
			return true, nil
		}
		if !knownBad {
			cand := decided.Clone()
			for _, i := range idx[lo:hi] {
				cand[i] = true
			}
			ok, err := st.test(st.pad(cand, st.padLen), st.indexSpecs(decided, idx, lo, hi)...)
			if err != nil {
				return false, err
			}
			if ok {
				for _, i := range idx[lo:hi] {
					decided[i] = true
				}
				return true, nil
			}
		}
		if hi-lo == 1 {
			decided[idx[lo]] = false
			st.logf("%s: query %d must stay pessimistic", st.spec.Name, idx[lo])
			return false, nil
		}
		mid := (lo + hi) / 2
		leftAll, err := solve(lo, mid, false)
		if err != nil {
			return false, err
		}
		if _, err := solve(mid, hi, leftAll); err != nil {
			return false, err
		}
		return false, nil
	}
	_, err := solve(0, len(idx), true)
	return err
}

// indexSpecs mirrors chunkSpecs for the subset recursion.
func (st *state) indexSpecs(decided oraql.Seq, idx []int, lo, hi int) []oraql.Seq {
	if st.eng.workers <= 1 || hi-lo <= 1 {
		return nil
	}
	var specs []oraql.Seq
	for l, h := lo, hi; h-l > 1 && len(specs) < st.eng.workers-1; {
		m := (l + h) / 2
		cand := decided.Clone()
		for _, i := range idx[l:m] {
			cand[i] = true
		}
		specs = append(specs, st.pad(cand, st.padLen))
		h = m
	}
	if mid := (lo + hi) / 2; len(specs) < st.eng.workers-1 && hi-mid >= 1 {
		cand := decided.Clone()
		for _, i := range idx[mid:hi] {
			cand[i] = true
		}
		specs = append(specs, st.pad(cand, st.padLen))
	}
	return specs
}
