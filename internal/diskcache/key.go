package diskcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Key derives a content address from a domain tag and the ordered
// content parts that determine the artifact. Parts are length-prefixed
// before hashing so no concatenation of parts can collide with a
// different split of the same bytes, and the schema version is folded
// in so a bump re-keys the entire store.
func Key(domain string, parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "oraql/%d/%s\x00", SchemaVersion, domain)
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// HashText returns the bare content hash of a text blob (module or
// function IR). Used to identify programs and functions in campaign
// state without tying the identity to a cache domain.
func HashText(text string) string {
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:])
}
