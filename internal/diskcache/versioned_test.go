package diskcache

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
)

func TestVersionedRoundtrip(t *testing.T) {
	s := open(t)
	key := Key("state", "record")
	if _, v, ok := s.LoadVersioned(key); ok || v != 0 {
		t.Fatalf("fresh key: got version %d, ok=%v", v, ok)
	}
	if err := s.CompareAndUpdate(key, 0, []byte("v1")); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	got, v, ok := s.LoadVersioned(key)
	if !ok || v != 1 || string(got) != "v1" {
		t.Fatalf("LoadVersioned = %q, %d, %v", got, v, ok)
	}
	if err := s.CompareAndUpdate(key, 1, []byte("v2")); err != nil {
		t.Fatalf("second publish: %v", err)
	}
	got, v, ok = s.LoadVersioned(key)
	if !ok || v != 2 || string(got) != "v2" {
		t.Fatalf("LoadVersioned = %q, %d, %v", got, v, ok)
	}
}

// A stale-version publish must fail with ErrCASConflict and leave the
// winner's payload intact.
func TestCompareAndUpdateConflict(t *testing.T) {
	s := open(t)
	key := Key("state", "contested")
	if err := s.CompareAndUpdate(key, 0, []byte("winner")); err != nil {
		t.Fatal(err)
	}
	err := s.CompareAndUpdate(key, 0, []byte("loser"))
	if !errors.Is(err, ErrCASConflict) {
		t.Fatalf("stale publish: got %v, want ErrCASConflict", err)
	}
	got, v, _ := s.LoadVersioned(key)
	if string(got) != "winner" || v != 1 {
		t.Fatalf("after conflict: %q at %d", got, v)
	}
	if c := s.Counters(); c.CASConflicts == 0 {
		t.Fatal("conflict not counted")
	}
}

// Superseded payloads are tombstoned after a publish (modulo the
// forensic window), but every slot name survives to pin its version.
func TestVersionedPrunesOldVersions(t *testing.T) {
	s := open(t)
	key := Key("state", "pruned")
	for v := uint64(0); v < 6; v++ {
		if err := s.CompareAndUpdate(key, v, []byte(fmt.Sprintf("gen%d", v+1))); err != nil {
			t.Fatal(err)
		}
	}
	live, slots := 0, s.scanVersions(key)
	for _, slot := range slots {
		if slot.live {
			live++
		}
	}
	if live > 1+keepVersions {
		t.Fatalf("%d live versions after 6 publishes: %v", live, slots)
	}
	if len(slots) != 6 {
		t.Fatalf("%d slots on disk, want all 6 names pinned: %v", len(slots), slots)
	}
	// Stale CAS against a tombstoned slot must still lose.
	if err := s.CompareAndUpdate(key, 1, []byte("stale")); !errors.Is(err, ErrCASConflict) {
		t.Fatalf("stale publish into tombstoned slot: got %v, want ErrCASConflict", err)
	}
}

// A corrupt newest version reads as a miss at its version (never a
// stale older payload), and the record keeps making progress on top.
func TestVersionedCorruptDegrades(t *testing.T) {
	s := open(t)
	key := Key("state", "corrupt")
	if err := s.CompareAndUpdate(key, 0, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.CompareAndUpdate(key, 1, []byte("bad")); err != nil {
		t.Fatal(err)
	}
	p := s.versionedPath(key, 2)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, v, ok := s.LoadVersioned(key)
	if ok || v != 2 {
		t.Fatalf("corrupt newest: got %q, %d, %v; want miss at version 2", got, v, ok)
	}
	if err := s.CompareAndUpdate(key, v, []byte("recovered")); err != nil {
		t.Fatalf("rebuild after corruption: %v", err)
	}
	got, v, ok = s.LoadVersioned(key)
	if !ok || v != 3 || string(got) != "recovered" {
		t.Fatalf("after rebuild: %q, %d, %v", got, v, ok)
	}
}

// The CAS conflict storm: several goroutines over two Store handles
// (standing in for sibling serve instances on one directory) increment
// a shared counter through UpdateVersioned. Every update must survive —
// the exact failure mode the old read-merge-write lost. Run under
// -race this also oracles the in-process paths.
func TestUpdateVersionedConflictStorm(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("state", "storm")
	const writers, iters = 4, 25
	var wg sync.WaitGroup
	errc := make(chan error, 2*writers)
	for _, s := range []*Store{s1, s2} {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(s *Store) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					err := s.UpdateVersioned(key, 0, func(old []byte) ([]byte, error) {
						n := 0
						if old != nil {
							if err := json.Unmarshal(old, &n); err != nil {
								return nil, err
							}
						}
						return json.Marshal(n + 1)
					})
					if err != nil {
						errc <- err
						return
					}
				}
			}(s)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	data, _, ok := s1.LoadVersioned(key)
	if !ok {
		t.Fatal("counter vanished")
	}
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		t.Fatal(err)
	}
	if want := 2 * writers * iters; n != want {
		t.Fatalf("lost updates: counter = %d, want %d", n, want)
	}
}

// MergeFuncVerdicts rides the same CAS loop: concurrent merges from
// two handles must not lose counts.
func TestMergeFuncVerdictsConcurrent(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 20
	var wg sync.WaitGroup
	for _, s := range []*Store{s1, s2} {
		wg.Add(1)
		go func(s *Store) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.MergeFuncVerdicts("fhash", "check", map[string]bool{"q1": true, "q2": false})
			}
		}(s)
	}
	wg.Wait()
	v := s1.LoadFuncVerdicts("fhash", "check")
	if v["q1"].Optimistic != 2*iters || v["q2"].Pessimistic != 2*iters {
		t.Fatalf("lost verdict updates: %+v", v)
	}
}
