// Package diskcache is a disk-backed, content-addressed artifact store
// shared by the pipeline, the probe driver, and the serve frontend.
//
// Every artifact is addressed by a sha256 key derived from the full
// content that determines it (function IR text, pipeline identity, AA
// chain, responder decision sequence) plus a schema version, so a
// schema bump silently invalidates the whole store. Entries are
// self-checking: a header carries the format magic, schema version and
// key, and a trailing sha256 guards the payload, so a truncated or
// corrupt file degrades to a cache miss, never an error or a torn read.
//
// The store is safe for concurrent use by multiple processes sharing
// one directory. Writers stage into a tmp/ subdirectory and publish
// with rename(2), which is atomic on POSIX filesystems: readers see
// either no entry or a complete one. Two processes writing the same
// key race benignly — both renames succeed and the entries are
// byte-identical by construction (same key, same content).
//
// GC is size-capped and mtime-driven: reads refresh an entry's mtime,
// and when the store grows past its budget the oldest entries are
// evicted until usage drops below a low-water mark, so hot entries
// survive pressure.
package diskcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SchemaVersion is baked into every key and every entry header.
// Bump it whenever the meaning or encoding of any cached payload
// changes; old entries then read as misses and age out through GC.
//
// v2: float constants print with a mandatory ".0"/exponent marker, so
// persisted IR text from v1 (where "vsplat 3" was ambiguous between an
// i64 and a double splat) must not be re-materialized.
const SchemaVersion = 2

// entryMagic brands every entry file.
var entryMagic = [4]byte{'O', 'R', 'Q', 'C'}

// DefaultMaxBytes caps the store at 512 MiB unless configured.
const DefaultMaxBytes = 512 << 20

// gc thresholds: a sweep triggers once at least gcCheckEvery bytes
// have been written since the last sweep, and evicts down to
// gcLowWater of the budget so sweeps stay rare.
const gcCheckEvery = 4 << 20

const gcLowWater = 0.85

// Counters is a snapshot of the store's activity since Open.
type Counters struct {
	Hits         int64 // Get found a valid entry
	Misses       int64 // Get found nothing
	Corrupt      int64 // Get found a torn/truncated/foreign entry (counted as a miss too)
	Puts         int64 // entries published
	PutErrors    int64 // publishes that failed (I/O errors; non-fatal)
	Evictions    int64 // entries removed by GC
	CASConflicts int64 // CompareAndUpdate attempts another writer beat
}

// Store is one open handle on a cache directory. It is safe for
// concurrent use from multiple goroutines; multiple Stores (in the
// same or different processes) may share a directory.
type Store struct {
	dir      string
	maxBytes int64

	hits, misses, corrupt atomic.Int64
	puts, putErrors       atomic.Int64
	evictions             atomic.Int64
	casConflicts          atomic.Int64

	// written accumulates bytes published since the last GC sweep;
	// gcMu serializes sweeps within this process.
	written atomic.Int64
	gcMu    sync.Mutex
}

// Option tunes Open.
type Option func(*Store)

// WithMaxBytes sets the GC size budget (<=0 keeps the default).
func WithMaxBytes(n int64) Option {
	return func(s *Store) {
		if n > 0 {
			s.maxBytes = n
		}
	}
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{dir: dir, maxBytes: DefaultMaxBytes}
	for _, o := range opts {
		o(s)
	}
	for _, sub := range []string{"objects", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("diskcache: open %s: %w", dir, err)
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key string) string {
	// Shard by the first key byte to keep directories small.
	return filepath.Join(s.dir, "objects", key[:2], key)
}

// Get returns the payload stored under key, or ok=false on a miss.
// A torn, truncated, foreign-schema or otherwise invalid entry is
// deleted and reported as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := decodeEntry(data, key)
	if err != nil {
		// Corrupt or foreign: drop it so it cannot waste reads again.
		s.corrupt.Add(1)
		s.misses.Add(1)
		_ = os.Remove(p)
		return nil, false
	}
	s.hits.Add(1)
	// Refresh mtime so GC sees this entry as hot. Best effort: the
	// entry may have been evicted between the read and the touch.
	now := time.Now()
	_ = os.Chtimes(p, now, now)
	return payload, true
}

// Put publishes payload under key. Errors are absorbed into the
// PutErrors counter: a failed write only costs a future miss.
func (s *Store) Put(key string, payload []byte) {
	data := encodeEntry(key, payload)
	if err := s.writeAtomic(key, data); err != nil {
		s.putErrors.Add(1)
		return
	}
	s.puts.Add(1)
	if s.written.Add(int64(len(data))) >= gcCheckEvery {
		s.written.Store(0)
		s.gc()
	}
}

func (s *Store) writeAtomic(key string, data []byte) error {
	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	// rename is atomic within one filesystem (tmp/ and objects/ share
	// the store root): concurrent readers see the old state or the
	// complete new entry, never a partial write. No fsync: a machine
	// crash can truncate the entry, which the checksum turns into a
	// miss on the next read.
	if err := os.Rename(name, s.path(key)); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// Counters returns a snapshot of the store's activity counters.
func (s *Store) Counters() Counters {
	return Counters{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Corrupt:      s.corrupt.Load(),
		Puts:         s.puts.Load(),
		PutErrors:    s.putErrors.Load(),
		Evictions:    s.evictions.Load(),
		CASConflicts: s.casConflicts.Load(),
	}
}

// Usage walks the store and returns its live entry count and byte
// total. It is O(entries); callers on hot paths should throttle.
func (s *Store) Usage() (entries int, bytes int64) {
	for _, e := range s.scan() {
		entries++
		bytes += e.size
	}
	return entries, bytes
}

type scanEntry struct {
	path  string
	size  int64
	mtime time.Time
}

func (s *Store) scan() []scanEntry {
	var out []scanEntry
	for _, root := range []string{"objects", "versioned"} {
		_ = filepath.Walk(filepath.Join(s.dir, root), func(path string, info os.FileInfo, err error) error {
			if err != nil || info == nil || info.IsDir() {
				return nil // entries may vanish mid-walk; skip and continue
			}
			out = append(out, scanEntry{path: path, size: info.Size(), mtime: info.ModTime()})
			return nil
		})
	}
	return out
}

// gc evicts oldest-first until usage is under the low-water mark.
// Concurrent sweeps from other processes race benignly: removing an
// already-removed entry is a no-op.
func (s *Store) gc() {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	entries := s.scan()
	var total int64
	for _, e := range entries {
		total += e.size
	}
	if total <= s.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	target := int64(float64(s.maxBytes) * gcLowWater)
	versionedRoot := filepath.Join(s.dir, "versioned") + string(filepath.Separator)
	for _, e := range entries {
		if total <= target {
			break
		}
		if e.size == 0 {
			continue // versioned tombstone: name-only, nothing to reclaim
		}
		// Re-stat before removing: the scan's mtime is stale, and a
		// writer (this process or another sharing the directory) may
		// have republished this path — or a reader touched it — since.
		// Evicting then would discard a fresh entry a Get just promised;
		// skip it and let the next sweep judge it by its new mtime.
		st, err := os.Stat(e.path)
		if err != nil {
			total -= e.size // already gone: a racing sweep evicted it
			continue
		}
		if st.ModTime().After(e.mtime) {
			continue
		}
		// Versioned slots are truncated, not unlinked: the name pins the
		// version against stale CAS writers (see versioned.go).
		if strings.HasPrefix(e.path, versionedRoot) {
			if os.Truncate(e.path, 0) == nil {
				s.evictions.Add(1)
			}
		} else if os.Remove(e.path) == nil {
			s.evictions.Add(1)
		}
		total -= e.size
	}
}

// GCNow forces a sweep regardless of the bytes-written trigger.
func (s *Store) GCNow() { s.gc() }

// entry layout:
//
//	magic[4] schema[u32] keyLen[u32] key payloadLen[u64] payload sha256(payload)[32]
func encodeEntry(key string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(key) + len(payload) + 52)
	buf.Write(entryMagic[:])
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], SchemaVersion)
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], uint32(len(key)))
	buf.Write(u32[:])
	buf.WriteString(key)
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], uint64(len(payload)))
	buf.Write(u64[:])
	buf.Write(payload)
	sum := sha256.Sum256(payload)
	buf.Write(sum[:])
	return buf.Bytes()
}

func decodeEntry(data []byte, key string) ([]byte, error) {
	if len(data) < 16 || !bytes.Equal(data[:4], entryMagic[:]) {
		return nil, fmt.Errorf("bad magic")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != SchemaVersion {
		return nil, fmt.Errorf("schema %d != %d", v, SchemaVersion)
	}
	keyLen := int(binary.LittleEndian.Uint32(data[8:12]))
	if keyLen < 0 || 12+keyLen+8 > len(data) {
		return nil, fmt.Errorf("truncated header")
	}
	if string(data[12:12+keyLen]) != key {
		return nil, fmt.Errorf("key mismatch")
	}
	off := 12 + keyLen
	payloadLen := binary.LittleEndian.Uint64(data[off : off+8])
	off += 8
	if uint64(len(data)-off) != payloadLen+sha256.Size {
		return nil, fmt.Errorf("truncated payload")
	}
	payload := data[off : off+int(payloadLen)]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[off+int(payloadLen):]) {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}
