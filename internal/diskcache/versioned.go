package diskcache

// Versioned entries: optimistic-concurrency shared state.
//
// Immutable artifacts (objects/) are published blind — two writers of
// the same key race benignly because the content is identical by
// construction. Mutable shared state (campaign verdict records, fleet
// bookkeeping) has no such luck: a read-merge-write from two processes
// loses one side's update. Versioned entries close that hole with the
// optimistic compare-and-update discipline: read the current version,
// recompute, publish as version+1, retry on conflict.
//
// Each version is its own entry file, versioned/xx/<key>.<%016x v>,
// self-checked like every other entry. Publishing uses link(2) from a
// staged tmp file: link fails with EEXIST when another process already
// published that version, which IS the compare-and-swap — no locks, no
// torn state, and the loser re-reads and retries.
//
// Superseded versions are truncated to zero-byte tombstones, never
// unlinked. The name is the lock: if a pruner removed version v+1
// outright, a writer still holding version v from an arbitrarily old
// read could link a stale payload into the reclaimed slot and silently
// erase every update since (the ABA hazard). A tombstone keeps the slot
// pinned — any stale link hits EEXIST — while releasing the payload
// bytes. Tombstones cost one empty directory entry per superseded
// version; the store's mutable records see modest update counts, so the
// growth is negligible next to the artifact payloads.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// ErrCASConflict reports that another writer published the version this
// CompareAndUpdate targeted; re-read and retry.
var ErrCASConflict = errors.New("diskcache: version conflict")

// keepVersions is how many superseded versions keep their payload (not
// just their tombstone) after a publish, as a cheap forensic window.
const keepVersions = 1

// versionedPath is the entry file for one (key, version) pair.
func (s *Store) versionedPath(key string, version uint64) string {
	return filepath.Join(s.dir, "versioned", key[:2], fmt.Sprintf("%s.%016x", key, version))
}

// versionedEntryKey is the identity embedded in the entry header, so a
// file moved between version slots fails its self-check.
func versionedEntryKey(key string, version uint64) string {
	return fmt.Sprintf("%s.%016x", key, version)
}

// versionSlot is one published version of a key. live=false marks a
// tombstone: the payload is gone but the name still pins the slot.
type versionSlot struct {
	v    uint64
	live bool
}

// scanVersions lists every version slot of key, tombstones included,
// unsorted.
func (s *Store) scanVersions(key string) []versionSlot {
	dir := filepath.Join(s.dir, "versioned", key[:2])
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []versionSlot
	for _, e := range ents {
		rest, ok := strings.CutPrefix(e.Name(), key+".")
		if !ok {
			continue
		}
		v, err := strconv.ParseUint(rest, 16, 64)
		if err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, versionSlot{v: v, live: info.Size() > 0})
	}
	return out
}

// LoadVersioned returns the payload and version of key's newest slot.
// ok=false with version>0 means the slot exists but its payload is gone
// (tombstoned by pruning, GC pressure, or corruption); the caller must
// still build its next CompareAndUpdate on that version, never on an
// older live one — an older payload is stale state, not a fallback.
// ok=false with version 0 means the key has never been published.
func (s *Store) LoadVersioned(key string) (payload []byte, version uint64, ok bool) {
	for {
		var newest versionSlot
		for _, slot := range s.scanVersions(key) {
			if slot.v > newest.v {
				newest = slot
			}
		}
		if newest.v == 0 {
			s.misses.Add(1)
			return nil, 0, false
		}
		if !newest.live {
			s.misses.Add(1)
			return nil, newest.v, false
		}
		data, err := os.ReadFile(s.versionedPath(key, newest.v))
		if err != nil || len(data) == 0 {
			// Tombstoned between scan and read: rescan settles on the
			// newer version the pruning writer published.
			continue
		}
		p, derr := decodeEntry(data, versionedEntryKey(key, newest.v))
		if derr != nil {
			// Corrupt: tombstone it (removal would unpin the slot) and
			// rescan. A torn concurrent publish is impossible — link(2)
			// only ever exposes complete staged files — so this is real
			// damage, and the record restarts one version later.
			s.corrupt.Add(1)
			_ = os.Truncate(s.versionedPath(key, newest.v), 0)
			continue
		}
		s.hits.Add(1)
		return p, newest.v, true
	}
}

// CompareAndUpdate publishes payload as version expect+1, succeeding
// only if this writer is the first to do so. expect must be the version
// LoadVersioned returned (0 when absent). On ErrCASConflict the caller
// re-reads and retries; any other error is an I/O fault.
func (s *Store) CompareAndUpdate(key string, expect uint64, payload []byte) error {
	next := expect + 1
	target := s.versionedPath(key, next)
	if _, err := os.Stat(target); err == nil {
		s.casConflicts.Add(1)
		return ErrCASConflict
	}
	data := encodeEntry(versionedEntryKey(key, next), payload)
	if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
		s.putErrors.Add(1)
		return err
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "cas-*")
	if err != nil {
		s.putErrors.Add(1)
		return err
	}
	name := tmp.Name()
	defer os.Remove(name)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		s.putErrors.Add(1)
		return err
	}
	if err := tmp.Close(); err != nil {
		s.putErrors.Add(1)
		return err
	}
	// link(2) is the atomic test-and-set: it fails with EEXIST when any
	// other process published this version first — a tombstone counts,
	// which is exactly what makes stale writers lose.
	if err := os.Link(name, target); err != nil {
		if os.IsExist(err) {
			s.casConflicts.Add(1)
			return ErrCASConflict
		}
		s.putErrors.Add(1)
		return err
	}
	s.puts.Add(1)
	// Tombstone superseded payloads (keeping a short forensic window).
	// Racing pruners truncate idempotently; never unlink — see the
	// package comment for why the names must survive.
	for _, slot := range s.scanVersions(key) {
		if slot.live && slot.v+keepVersions < next {
			_ = os.Truncate(s.versionedPath(key, slot.v), 0)
		}
	}
	return nil
}

// UpdateVersioned runs the optimistic read-recompute-publish loop:
// update receives the current payload (nil when absent) and returns the
// next one. Retries on conflict with a short jittered backoff, up to
// maxRetries (<=0 means a generous default). Every conflict means some
// other writer succeeded, so the loop is lock-free: fleet-wide progress
// is guaranteed even when one writer keeps losing.
func (s *Store) UpdateVersioned(key string, maxRetries int, update func(old []byte) ([]byte, error)) error {
	if maxRetries <= 0 {
		maxRetries = 64
	}
	for attempt := 0; ; attempt++ {
		old, version, _ := s.LoadVersioned(key)
		next, err := update(old)
		if err != nil {
			return err
		}
		err = s.CompareAndUpdate(key, version, next)
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrCASConflict) {
			return err
		}
		if attempt >= maxRetries {
			return fmt.Errorf("diskcache: update %s: %w after %d attempts", key[:8], ErrCASConflict, attempt+1)
		}
		// Jittered backoff desynchronizes a conflict storm; the winner
		// of each round finished already, so waits stay microscopic.
		time.Sleep(time.Duration(rand.Int63n(int64(200*time.Microsecond) * int64(attempt+1))))
	}
}
