package diskcache

import "encoding/json"

// Campaign state: the probe driver persists two artifact families so a
// later process (or a reprobe of an edited program) can skip work.
//
//   - Test outcomes, keyed by the campaign identity plus the exact
//     response sequence: "did the program compiled under this sequence
//     pass its check?" These make a repeated campaign replay from disk.
//
//   - Per-query verdicts, keyed by the *function* content hash: for
//     each alias query a function asked (identified by a stable
//     descriptor, not a sequence index), how often the optimistic
//     answer survived or was convicted. Functions untouched by an edit
//     keep their hash, so their verdicts seed the next bisection.

// TestOutcome is one persisted probe-test result.
type TestOutcome struct {
	OK     bool `json:"ok"`
	Unique int  `json:"unique"` // unique optimistic queries the run consumed
}

// TestOutcomeKey derives the store key for one (campaign, sequence)
// test. campaignID must capture everything that determines the test:
// program content, pipeline configuration, check command.
func TestOutcomeKey(campaignID, seq string) string {
	return Key("test", campaignID, seq)
}

// LoadTestOutcome fetches a persisted test result.
func (s *Store) LoadTestOutcome(key string) (TestOutcome, bool) {
	data, ok := s.Get(key)
	if !ok {
		return TestOutcome{}, false
	}
	var o TestOutcome
	if json.Unmarshal(data, &o) != nil {
		return TestOutcome{}, false
	}
	return o, true
}

// StoreTestOutcome persists a test result.
func (s *Store) StoreTestOutcome(key string, o TestOutcome) {
	data, err := json.Marshal(o)
	if err != nil {
		return
	}
	s.Put(key, data)
}

// VerdictCounts accumulates how one alias query fared across probes.
type VerdictCounts struct {
	Optimistic  int64 `json:"opt"`  // optimistic answer survived the campaign
	Pessimistic int64 `json:"pess"` // optimistic answer was convicted (guilty)
}

// FuncVerdicts maps a stable query descriptor to its running counts.
type FuncVerdicts map[string]VerdictCounts

// funcVerdictsKey: one entry per (function content, campaign check).
func funcVerdictsKey(funcHash, checkID string) string {
	return Key("verdicts", funcHash, checkID)
}

// LoadFuncVerdicts fetches the verdict history for one function
// content hash (nil when none recorded).
func (s *Store) LoadFuncVerdicts(funcHash, checkID string) FuncVerdicts {
	data, _, ok := s.LoadVersioned(funcVerdictsKey(funcHash, checkID))
	if !ok {
		return nil
	}
	var v FuncVerdicts
	if json.Unmarshal(data, &v) != nil {
		return nil
	}
	return v
}

// MergeFuncVerdicts folds one campaign's observations (descriptor →
// optimistic-survived) into the persisted history through the
// version-checked compare-and-update loop, so concurrent campaigns
// (same process, sibling serve instances, separate CLI runs) never
// lose each other's counts.
func (s *Store) MergeFuncVerdicts(funcHash, checkID string, obs map[string]bool) {
	if len(obs) == 0 {
		return
	}
	// An exhausted retry budget (pathological conflict storm or an I/O
	// fault) only costs hint quality, never correctness — drop it.
	_ = s.UpdateVersioned(funcVerdictsKey(funcHash, checkID), 0, func(old []byte) ([]byte, error) {
		v := FuncVerdicts{}
		if old != nil {
			_ = json.Unmarshal(old, &v)
		}
		for desc, optimistic := range obs {
			c := v[desc]
			if optimistic {
				c.Optimistic++
			} else {
				c.Pessimistic++
			}
			v[desc] = c
		}
		return json.Marshal(v)
	})
}
