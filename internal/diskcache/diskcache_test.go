package diskcache

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, opts ...Option) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t)
	key := Key("fn", "module", "pipeline", "chain", "", "f", "define ...")
	payload := []byte("optimized function body")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit before put")
	}
	s.Put(key, payload)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	c := s.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Puts != 1 || c.Corrupt != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestKeyDerivation(t *testing.T) {
	// Different splits of the same bytes must not collide.
	if Key("d", "ab", "c") == Key("d", "a", "bc") {
		t.Fatal("length prefixing failed: split collision")
	}
	if Key("d1", "x") == Key("d2", "x") {
		t.Fatal("domains collide")
	}
	if Key("d", "x") != Key("d", "x") {
		t.Fatal("key not deterministic")
	}
}

// A truncated entry must read as a miss, never an error or torn data.
func TestTruncatedEntryIsMiss(t *testing.T) {
	s := open(t)
	key := Key("fn", "content")
	s.Put(key, []byte("a payload long enough to truncate meaningfully"))
	p := s.path(key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 3, 8, 15, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(p, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.Get(key); ok {
			t.Fatalf("truncation to %d bytes served %q", n, got)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("truncated entry (%d bytes) not removed", n)
		}
		// Restore for the next truncation point.
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if c := s.Counters(); c.Corrupt == 0 {
		t.Fatal("corruption not counted")
	}
}

// A bit flip anywhere in the payload must fail the checksum.
func TestCorruptPayloadIsMiss(t *testing.T) {
	s := open(t)
	key := Key("fn", "content2")
	s.Put(key, []byte("payload under checksum"))
	p := s.path(key)
	data, _ := os.ReadFile(p)
	data[len(data)-40] ^= 0x01 // inside the payload region
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt payload served")
	}
}

// An entry written under a different schema version must be invisible.
func TestSchemaBumpInvalidates(t *testing.T) {
	s := open(t)
	key := Key("fn", "content3")
	s.Put(key, []byte("old world"))
	p := s.path(key)
	data, _ := os.ReadFile(p)
	binary.LittleEndian.PutUint32(data[4:8], SchemaVersion+1)
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("foreign-schema entry served")
	}
	// And the key itself changes with the version (simulated via domain).
	if Key("fn", "x") == Key("fn2", "x") {
		t.Fatal("unexpected collision")
	}
}

// An entry stored under one key must not answer for another (hash
// sharding puts colliding prefixes in the same directory).
func TestKeyMismatchIsMiss(t *testing.T) {
	s := open(t)
	k1 := Key("fn", "a")
	k2 := Key("fn", "b")
	s.Put(k1, []byte("for k1"))
	// Copy k1's file into k2's slot, simulating a mixed-up entry.
	data, _ := os.ReadFile(s.path(k1))
	if err := os.MkdirAll(filepath.Dir(s.path(k2)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(k2), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k2); ok {
		t.Fatal("entry with mismatched embedded key served")
	}
}

// Two stores (standing in for two processes) hammering the same
// directory must never serve a torn entry: every successful Get
// returns one of the complete payloads.
func TestConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	payload := func(k, gen int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("k%d-g%d;", k, gen)), 100)
	}
	valid := func(k int, got []byte) bool {
		for gen := 0; gen < 4; gen++ {
			if bytes.Equal(got, payload(k, gen)) {
				return true
			}
		}
		return false
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for _, s := range []*Store{s1, s2} {
		wg.Add(2)
		go func(s *Store) { // writer
			defer wg.Done()
			for gen := 0; gen < 4; gen++ {
				for k := 0; k < keys; k++ {
					s.Put(Key("race", fmt.Sprint(k)), payload(k, gen))
				}
			}
		}(s)
		go func(s *Store) { // reader
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := i % keys
				if got, ok := s.Get(Key("race", fmt.Sprint(k))); ok && !valid(k, got) {
					errc <- fmt.Errorf("torn read for key %d: %q...", k, got[:20])
					return
				}
			}
		}(s)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// GC under size pressure must evict cold entries and keep hot ones.
func TestGCKeepsHotEntries(t *testing.T) {
	s := open(t, WithMaxBytes(8*1024))
	payload := bytes.Repeat([]byte("x"), 1024)
	old := time.Now().Add(-time.Hour)
	var cold []string
	for i := 0; i < 12; i++ {
		k := Key("gc", fmt.Sprintf("cold%d", i))
		s.Put(k, payload)
		// Age the entry so mtime ordering is unambiguous.
		if err := os.Chtimes(s.path(k), old, old); err != nil {
			t.Fatal(err)
		}
		cold = append(cold, k)
	}
	hot := Key("gc", "hot")
	s.Put(hot, payload)
	s.GCNow()
	if _, ok := s.Get(hot); !ok {
		t.Fatal("hot entry evicted")
	}
	evicted := 0
	for _, k := range cold {
		if _, ok := s.Get(k); !ok {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("no cold entries evicted under size pressure")
	}
	if c := s.Counters(); c.Evictions == 0 {
		t.Fatalf("evictions not counted: %+v", c)
	}
	if _, bytes := s.Usage(); bytes > 8*1024 {
		t.Fatalf("usage %d still above budget", bytes)
	}
}

func TestCampaignState(t *testing.T) {
	s := open(t)
	key := TestOutcomeKey("campaign", "1101")
	if _, ok := s.LoadTestOutcome(key); ok {
		t.Fatal("outcome hit before store")
	}
	s.StoreTestOutcome(key, TestOutcome{OK: true, Unique: 7})
	o, ok := s.LoadTestOutcome(key)
	if !ok || !o.OK || o.Unique != 7 {
		t.Fatalf("outcome = %+v, %v", o, ok)
	}

	s.MergeFuncVerdicts("fhash", "check", map[string]bool{"q1": true, "q2": false})
	s.MergeFuncVerdicts("fhash", "check", map[string]bool{"q1": true})
	v := s.LoadFuncVerdicts("fhash", "check")
	if v["q1"].Optimistic != 2 || v["q1"].Pessimistic != 0 {
		t.Fatalf("q1 = %+v", v["q1"])
	}
	if v["q2"].Pessimistic != 1 {
		t.Fatalf("q2 = %+v", v["q2"])
	}
	if s.LoadFuncVerdicts("other", "check") != nil {
		t.Fatal("verdicts leak across function hashes")
	}
}

// GC racing a concurrent writer (the multi-process shape: two Store
// handles on one directory, one sweeping under size pressure while the
// other republishes and immediately re-reads hot keys). A republished
// entry carries a fresh mtime, so the sweeping store's stale scan must
// not evict it out from under the reader: every Get issued right after
// a Put must hit. Cold filler entries keep the store over budget so
// every GCNow actually evicts.
func TestGCRacesConcurrentWriter(t *testing.T) {
	dir := t.TempDir()
	writer, err := Open(dir, WithMaxBytes(16*1024))
	if err != nil {
		t.Fatal(err)
	}
	sweeper, err := Open(dir, WithMaxBytes(16*1024))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("p"), 512)
	old := time.Now().Add(-time.Hour)
	age := func(s *Store, k string) {
		_ = os.Chtimes(s.path(k), old, old)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 2)

	wg.Add(1)
	go func() { // filler: cold entries pumping size pressure
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := Key("gcrace", "cold", fmt.Sprint(i%64))
			writer.Put(k, payload)
			age(writer, k)
		}
	}()
	wg.Add(1)
	go func() { // sweeper under constant pressure
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sweeper.GCNow()
		}
	}()
	wg.Add(1)
	go func() { // hot writer: republish then read back immediately
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 400; i++ {
			k := Key("gcrace", "hot", fmt.Sprint(i%4))
			writer.Put(k, payload)
			if _, ok := writer.Get(k); !ok {
				errc <- fmt.Errorf("iteration %d: fresh entry evicted before read-back", i)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if c := sweeper.Counters(); c.Evictions == 0 {
		t.Fatal("sweeper never evicted; the race was not exercised")
	}
}
