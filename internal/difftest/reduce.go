package difftest

import "strings"

// ReduceSource delta-debugs a minic source down to a smaller program
// for which interesting still holds (for triage: "compiles cleanly
// and still diverges"). The reduction is line-based with two moves —
// removing whole brace-balanced blocks and removing contiguous line
// chunks of shrinking size — iterated to a fixpoint. budget bounds the
// number of predicate evaluations (0 means a generous default); the
// returned count reports how many were spent.
//
// The generator emits one statement per line precisely so that this
// reducer converges quickly; it works on any minic source, since
// candidates that no longer parse simply fail the predicate.
func ReduceSource(src string, interesting func(string) bool, budget int) (string, int) {
	if budget <= 0 {
		budget = 2000
	}
	lines := splitTrim(src)
	tests := 0
	try := func(cand []string) bool {
		if tests >= budget {
			return false
		}
		tests++
		return interesting(strings.Join(cand, "\n") + "\n")
	}
	for {
		n := len(lines)
		lines = removeBlocks(lines, try)
		lines = removeChunks(lines, try)
		if len(lines) == n || tests >= budget {
			break
		}
	}
	return strings.Join(lines, "\n") + "\n", tests
}

func splitTrim(src string) []string {
	var out []string
	for _, l := range strings.Split(src, "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

// without returns lines with [lo, hi) removed.
func without(lines []string, lo, hi int) []string {
	out := make([]string, 0, len(lines)-(hi-lo))
	out = append(out, lines[:lo]...)
	return append(out, lines[hi:]...)
}

// removeBlocks tries to drop whole brace-balanced regions: for every
// line that opens a block, the candidate removes the opener through
// its matching closer. Larger (outer) blocks are attempted first.
func removeBlocks(lines []string, try func([]string) bool) []string {
	for i := 0; i < len(lines); i++ {
		if !strings.HasSuffix(strings.TrimSpace(lines[i]), "{") {
			continue
		}
		j := matchingBrace(lines, i)
		if j < 0 {
			continue
		}
		if cand := without(lines, i, j+1); try(cand) {
			lines = cand
			i-- // rescan this position
		}
	}
	return lines
}

// matchingBrace returns the index of the line closing the block opened
// at line i, or -1.
func matchingBrace(lines []string, i int) int {
	depth := 0
	for j := i; j < len(lines); j++ {
		depth += strings.Count(lines[j], "{") - strings.Count(lines[j], "}")
		if depth == 0 {
			return j
		}
	}
	return -1
}

// removeChunks is the classic ddmin move: remove contiguous chunks of
// shrinking size until single-line removals stop helping.
func removeChunks(lines []string, try func([]string) bool) []string {
	for size := len(lines) / 2; size >= 1; size /= 2 {
		for lo := 0; lo+size <= len(lines); {
			if cand := without(lines, lo, lo+size); try(cand) {
				lines = cand
			} else {
				lo++
			}
		}
	}
	return lines
}
