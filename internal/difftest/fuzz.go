package difftest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/progen"
	"github.com/oraql/go-oraql/internal/warehouse"
)

// FuzzOptions configures one fuzzing campaign.
type FuzzOptions struct {
	// Ctx, when non-nil, cancels the campaign: workers stop picking up
	// seeds and Fuzz returns the context error alongside the partial
	// result. Used by the serving layer to drain fuzz jobs.
	Ctx context.Context
	// N is the number of programs; seeds run [Seed, Seed+N).
	N    int
	Seed int64
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
	// CompileWorkers is the per-function parallelism inside each
	// compilation (0 = one global budget: GOMAXPROCS split over the
	// campaign workers, so outer x inner stays within the machine).
	CompileWorkers int
	// Cache, when non-nil, is threaded into every oracle compilation
	// (see CheckOptions.Cache): re-fuzzing a seed range warm-starts
	// from artifacts persisted by earlier campaigns or other processes.
	Cache *diskcache.Store
	// Gen tunes the program generator; Grammar is the profile label the
	// generator options came from, recorded in warehouse findings so
	// corpus queries can ask which grammar features find bugs.
	Gen     progen.Options
	Grammar string
	// PrioritySeeds are generated first (deduplicated, before the
	// [Seed, Seed+N) fill) — corpus distillation feeds the historically
	// divergence-productive seeds here (-seed-from-warehouse). The
	// campaign still runs N programs total.
	PrioritySeeds []int64
	// Run configures the simulated machine.
	Run irinterp.Options
	// Variants is the compilation matrix (default Variants()).
	Variants []Variant
	// Triage runs the full diagnosis on every divergence.
	Triage bool
	// MaxDivergences stops the campaign early once this many
	// divergences were found (0 = 3).
	MaxDivergences int
	// CorpusDir, when set, receives the diverging source, the
	// minimized reproducer, and the JSON report of every divergence.
	CorpusDir string
	// Log receives progress lines when non-nil.
	Log io.Writer
}

// Report is the JSON-serializable record of one divergence.
type Report struct {
	Seed      int64   `json:"seed"`
	Variant   string  `json:"variant"`
	File      string  `json:"file"`
	Source    string  `json:"source"`
	Ref       string  `json:"ref"`
	Got       string  `json:"got"`
	RunErr    string  `json:"run_err,omitempty"`
	Triage    *Triage `json:"triage,omitempty"`
	TriageErr string  `json:"triage_err,omitempty"`
}

// FuzzResult summarizes a campaign.
type FuzzResult struct {
	Programs    int       `json:"programs"`
	Variants    int       `json:"variants"`
	Divergences []*Report `json:"divergences"`
	// Errors records harness failures (generated program failed to
	// compile or the reference run crashed) — any entry is a bug.
	Errors []string `json:"errors,omitempty"`
}

// Fuzz runs the campaign: N generated programs, each checked under the
// variant matrix, with divergences optionally triaged and archived.
// Worker scheduling does not affect the outcome: results are collected
// per seed and reported in seed order.
func Fuzz(opts FuzzOptions) (*FuzzResult, error) {
	if opts.Ctx == nil {
		opts.Ctx = context.Background()
	}
	if opts.N <= 0 {
		opts.N = 100
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	if opts.CompileWorkers <= 0 {
		// Split one machine budget between campaign and intra-compile
		// parallelism instead of multiplying them.
		opts.CompileWorkers = runtime.GOMAXPROCS(0) / opts.Workers
		if opts.CompileWorkers < 1 {
			opts.CompileWorkers = 1
		}
	}
	if opts.MaxDivergences <= 0 {
		opts.MaxDivergences = 3
	}
	variants := opts.Variants
	if len(variants) == 0 {
		variants = Variants()
	}

	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "[oraql-fuzz] "+format+"\n", args...)
		}
	}

	res := &FuzzResult{Variants: len(variants)}
	var mu sync.Mutex
	var found atomic.Int64
	seeds := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				if found.Load() >= int64(opts.MaxDivergences) || opts.Ctx.Err() != nil {
					continue // drain: stop doing work, keep the channel moving
				}
				p := progen.Generate(seed, opts.Gen)
				div, err := Check(p, CheckOptions{Run: opts.Run, Variants: variants,
					CompileWorkers: opts.CompileWorkers, Cache: opts.Cache})
				mu.Lock()
				res.Programs++
				mu.Unlock()
				if err != nil {
					mu.Lock()
					res.Errors = append(res.Errors, err.Error())
					mu.Unlock()
					continue
				}
				if div == nil {
					continue
				}
				found.Add(1)
				logf("%s", div)
				rep := &Report{
					Seed: seed, Variant: div.Variant.Name, File: p.FileName,
					Source: p.Source, Ref: div.Ref, Got: div.Got, RunErr: div.RunErr,
				}
				if opts.Triage {
					tr, terr := TriageDivergence(div, opts.Run)
					if terr != nil {
						rep.TriageErr = terr.Error()
						logf("seed %d: triage failed: %v", seed, terr)
					} else {
						rep.Triage = tr
						logf("seed %d: triaged to pass %q (position %d), %d guilty queries, %d-line reproducer, artifact %s",
							seed, tr.Pass, tr.PassIndex, len(tr.Queries), tr.ReproLines, tr.ArtifactID[:12])
					}
				}
				mu.Lock()
				res.Divergences = append(res.Divergences, rep)
				mu.Unlock()
			}
		}()
	}
	for _, s := range seedOrder(opts) {
		seeds <- s
	}
	close(seeds)
	wg.Wait()

	sort.Slice(res.Divergences, func(i, j int) bool { return res.Divergences[i].Seed < res.Divergences[j].Seed })
	sort.Strings(res.Errors)

	if err := opts.Ctx.Err(); err != nil {
		return res, err
	}

	// Every divergence goes into the forensics warehouse when the
	// campaign runs with a shared cache. Ingestion happens after the
	// workers join, over the seed-sorted list, so record order (and the
	// "N filed" log line) is deterministic; content addressing makes a
	// replayed campaign a no-op here.
	if w := warehouse.Open(opts.Cache); w != nil && len(res.Divergences) > 0 {
		filed := 0
		for _, r := range res.Divergences {
			n, err := ingestDivergence(w, opts.Grammar, r)
			if err != nil {
				logf("warehouse ingest failed for seed %d: %v", r.Seed, err)
				continue
			}
			filed += n
		}
		logf("filed %d warehouse records for %d divergences", filed, len(res.Divergences))
	}

	if opts.CorpusDir != "" && len(res.Divergences) > 0 {
		if err := writeCorpus(opts.CorpusDir, res.Divergences); err != nil {
			return res, err
		}
		logf("archived %d divergences under %s", len(res.Divergences), opts.CorpusDir)
	}
	logf("done: %d programs x %d variants, %d divergences, %d harness errors",
		res.Programs, res.Variants, len(res.Divergences), len(res.Errors))
	return res, nil
}

// seedOrder lays out the campaign's N seeds: the priority seeds first
// (deduplicated, campaign-order preserved), then the [Seed, Seed+N)
// range fills the remainder, skipping seeds already prioritized. The
// order feeds a deterministic work list; divergence results still
// report in seed order.
func seedOrder(opts FuzzOptions) []int64 {
	order := make([]int64, 0, opts.N)
	seen := make(map[int64]bool, opts.N)
	for _, s := range opts.PrioritySeeds {
		if len(order) >= opts.N {
			break
		}
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	for i := int64(0); len(order) < opts.N; i++ {
		s := opts.Seed + i
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	return order
}

// IngestReports files a batch of divergence reports in the warehouse
// — the offline path behind `oraql warehouse ingest`, replaying
// archived fuzz-report JSON into a (possibly different) corpus.
// Returns how many records the batch introduced; replays are no-ops.
func IngestReports(w *warehouse.Store, grammar string, reports []*Report) (int, error) {
	filed := 0
	for _, r := range reports {
		n, err := ingestDivergence(w, grammar, r)
		filed += n
		if err != nil {
			return filed, err
		}
	}
	return filed, nil
}

// ingestDivergence files one divergence in the warehouse: a fuzz
// record always, plus a triage record carrying the artifact when the
// diagnosis ran. Returns how many records this call introduced.
func ingestDivergence(w *warehouse.Store, grammar string, r *Report) (int, error) {
	filed := 0
	fz := &warehouse.Record{
		Kind: warehouse.KindFuzz, App: r.Variant, Grammar: grammar,
		Seed: r.Seed, Divergent: true,
	}
	if _, added, err := w.Ingest(fz); err != nil {
		return filed, err
	} else if added {
		filed++
	}
	t := r.Triage
	if t == nil {
		return filed, nil
	}
	tr := &warehouse.Record{
		Kind: warehouse.KindTriage, App: r.Variant, Grammar: grammar,
		Seed: r.Seed, Divergent: true, FinalSeq: t.GuiltySeq,
		Artifact: &warehouse.TriageArtifact{
			ID: t.ArtifactID, Reproducer: t.Reproducer, ReproLines: t.ReproLines,
			Pass: t.Pass, PassIndex: t.PassIndex, GuiltySeq: t.GuiltySeq,
			Variant: t.Variant,
		},
	}
	// The guilty queries are exactly the ones whose optimistic answer
	// breaks the program — record them pessimistic so shape statistics
	// count them as convictions.
	for _, q := range t.Queries {
		tr.Queries = append(tr.Queries, warehouse.QueryVerdict{
			Index: q.Index, Pass: q.Pass, Func: q.Func, A: q.A, B: q.B,
		})
	}
	if _, added, err := w.Ingest(tr); err != nil {
		return filed, err
	} else if added {
		filed++
	}
	return filed, nil
}

// writeCorpus archives each divergence: the full source, the minimized
// reproducer when triaged, and the JSON report.
func writeCorpus(dir string, reports []*Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range reports {
		base := fmt.Sprintf("seed%d-%s", r.Seed, r.Variant)
		if err := os.WriteFile(filepath.Join(dir, base+".mc"), []byte(r.Source), 0o644); err != nil {
			return err
		}
		if r.Triage != nil {
			if err := os.WriteFile(filepath.Join(dir, base+"-repro.mc"), []byte(r.Triage.Reproducer), 0o644); err != nil {
				return err
			}
		}
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, base+".json"), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
