// Package difftest is the differential fuzzing and miscompile-triage
// subsystem. It drives the UB-free program generator (internal/progen)
// through a differential oracle: every generated program is compiled
// unoptimized and under a matrix of optimized AA configurations, all
// runs are compared through verify.Spec, and any divergence is a
// miscompilation by construction.
//
// On a divergence the triage pipeline (triage.go) automatically
//
//  1. delta-debugs the minic source to a minimal reproducer,
//  2. bisects the pass pipeline to the first pass whose prefix
//     miscompiles, and
//  3. when the divergence was caused by ORAQL's optimistic responder,
//     bisects the response sequence to the minimal guilty query set —
//     the exact alias queries whose optimistic answer breaks the
//     program (the automated version of the paper's Section IV
//     probe-and-verify workflow, pointed inward at our own pipeline).
//
// The cmd/oraql-fuzz CLI and the go test fuzz targets are thin
// wrappers over this package.
package difftest

import (
	"fmt"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/progen"
	"github.com/oraql/go-oraql/internal/verify"
)

// Variant is one optimized compilation configuration checked against
// the unoptimized reference of the same frontend model.
type Variant struct {
	Name  string      `json:"name"`
	Model minic.Model `json:"model"`
	// OptLevel 0 means the default -O3 pipeline, 1 the reduced one.
	OptLevel             int  `json:"opt_level,omitempty"`
	FullAAChain          bool `json:"full_aa_chain,omitempty"`
	DisableAAQueryCache  bool `json:"disable_aa_query_cache,omitempty"`
	DisableAnalysisCache bool `json:"disable_analysis_cache,omitempty"`
	// AAChain selects the alias-analysis chain by registered name or
	// comma list (pipeline.Config.AAChain); empty defers to FullAAChain.
	AAChain string `json:"aa_chain,omitempty"`
	// BlockAA consults an empty-sequence blocking-mode ORAQL pass
	// before the chain, suppressing every conservative analysis. More
	// pessimism is always sound, so this variant must never diverge.
	BlockAA bool `json:"block_aa,omitempty"`
	// InjectOptimistic appends a fully-optimistic ORAQL responder:
	// every otherwise-unanswerable query is answered no-alias. This is
	// deliberately unsound — it is the fault injection that proves the
	// triage path end to end.
	InjectOptimistic bool `json:"inject_optimistic,omitempty"`
}

// config builds the pipeline configuration for one source under the
// variant, with the pipeline truncated after stopAfter passes (0 =
// full pipeline).
func (v Variant) config(name, file, src string, stopAfter int) pipeline.Config {
	cfg := pipeline.Config{
		Name:                 name,
		Source:               src,
		SourceFile:           file,
		Frontend:             minic.Options{Model: v.Model},
		OptLevel:             v.OptLevel,
		StopAfter:            stopAfter,
		FullAAChain:          v.FullAAChain,
		AAChain:              v.AAChain,
		DisableAAQueryCache:  v.DisableAAQueryCache,
		DisableAnalysisCache: v.DisableAnalysisCache,
	}
	switch {
	case v.InjectOptimistic:
		cfg.ORAQL = &oraql.Options{}
	case v.BlockAA:
		cfg.ORAQL = &oraql.Options{Mode: oraql.ModeBlocking}
	}
	return cfg
}

// withSeq returns the variant's config with an explicit ORAQL response
// sequence (query bisection).
func (v Variant) configWithSeq(name, file, src string, seq oraql.Seq) pipeline.Config {
	cfg := v.config(name, file, src, 0)
	cfg.ORAQL = &oraql.Options{Seq: seq}
	return cfg
}

// Variants is the sound AA-configuration matrix: every entry must
// agree with the unoptimized build on every UB-free program. A
// divergence in any of them is a real miscompilation at head.
func Variants() []Variant {
	return []Variant{
		{Name: "o3"},
		{Name: "o3-fullaa", FullAAChain: true},
		{Name: "o3-no-aa-cache", DisableAAQueryCache: true},
		{Name: "o3-no-analysis-cache", DisableAnalysisCache: true},
		{Name: "o1", OptLevel: 1},
		{Name: "o3-blocked-aa", BlockAA: true},
		{Name: "o3-openmp", Model: minic.ModelOpenMP},
		{Name: "o3-offload", Model: minic.ModelOffload},
	}
}

// InjectVariant is the deliberately-unsound configuration used to
// exercise the triage path.
func InjectVariant() Variant {
	return Variant{Name: "o3-inject-optimistic", InjectOptimistic: true}
}

// Divergence describes one miscompilation found by the oracle.
type Divergence struct {
	Program *progen.Program
	Variant Variant
	// Ref and Got are the unoptimized and optimized outputs; RunErr is
	// set when the optimized run crashed or tripped the simulator.
	Ref, Got string
	RunErr   string
}

func (d *Divergence) String() string {
	if d.RunErr != "" {
		return fmt.Sprintf("seed %d, variant %s: optimized run failed: %s", d.Program.Seed, d.Variant.Name, d.RunErr)
	}
	return fmt.Sprintf("seed %d, variant %s: output diverges:\n ref: %q\n got: %q",
		d.Program.Seed, d.Variant.Name, d.Ref, d.Got)
}

// CheckOptions configures one oracle invocation.
type CheckOptions struct {
	Run      irinterp.Options
	Variants []Variant
	// CompileWorkers is the per-function parallelism of every
	// compilation the oracle runs (0 = GOMAXPROCS, 1 = sequential).
	// The oracle's verdict is identical for every value — the fuzz
	// target draws random worker counts to enforce exactly that.
	CompileWorkers int
	// Cache, when non-nil, backs every oracle compilation with the
	// persistent store: re-checking a seed already compiled by a prior
	// campaign (or another process) reuses its artifacts. Compilations
	// with an active ORAQL responder bypass the cache by construction,
	// so the oracle's verdict is identical with or without it.
	Cache *diskcache.Store
}

// reference compiles src unoptimized under the model and returns its
// output, which by the generator's UB-freedom is the ground truth.
func reference(name, file, src string, model minic.Model, opts CheckOptions) (string, error) {
	cr, err := pipeline.Compile(pipeline.Config{
		Name: name, Source: src, SourceFile: file,
		Frontend: minic.Options{Model: model}, OptLevel: -1,
		CompileWorkers: opts.CompileWorkers, DiskCache: opts.Cache,
	})
	if err != nil {
		return "", fmt.Errorf("reference compile: %w", err)
	}
	res, err := irinterp.Run(cr.Program, opts.Run)
	if err != nil {
		return "", fmt.Errorf("reference run: %w", err)
	}
	return res.Stdout, nil
}

// Check runs the differential oracle on one program and returns the
// first divergence, or nil when every variant agrees with its
// reference. Compile or reference-run failures are returned as errors:
// a generated program that does not build cleanly is a harness bug,
// not a miscompile.
func Check(p *progen.Program, opts CheckOptions) (*Divergence, error) {
	variants := opts.Variants
	if len(variants) == 0 {
		variants = Variants()
	}
	refs := map[minic.Model]*verify.Spec{}
	for _, v := range variants {
		spec := refs[v.Model]
		if spec == nil {
			out, err := reference(fmt.Sprintf("seed%d-ref", p.Seed), p.FileName, p.Source, v.Model, opts)
			if err != nil {
				return nil, fmt.Errorf("seed %d model %d: %w", p.Seed, v.Model, err)
			}
			spec = &verify.Spec{References: []string{out}}
			if err := spec.Compile(); err != nil {
				return nil, err
			}
			refs[v.Model] = spec
		}
		vcfg := v.config(fmt.Sprintf("seed%d-%s", p.Seed, v.Name), p.FileName, p.Source, 0)
		vcfg.CompileWorkers = opts.CompileWorkers
		vcfg.DiskCache = opts.Cache
		cr, err := pipeline.Compile(vcfg)
		if err != nil {
			return nil, fmt.Errorf("seed %d variant %s: compile: %w", p.Seed, v.Name, err)
		}
		res, runErr := irinterp.Run(cr.Program, opts.Run)
		var stdout string
		if res != nil {
			stdout = res.Stdout
		}
		if r := spec.Check(stdout, runErr); !r.OK {
			d := &Divergence{Program: p, Variant: v, Ref: spec.References[0], Got: stdout}
			if runErr != nil {
				d.RunErr = runErr.Error()
			}
			return d, nil
		}
	}
	return nil, nil
}
