package difftest

import (
	"testing"

	"github.com/oraql/go-oraql/internal/progen"
)

// FuzzDifferential is the native fuzz entry to the differential
// oracle: the fuzzer explores generator seeds, statement budgets, and
// compile-worker counts, and every generated program must agree
// between the unoptimized reference and the full sound variant matrix
// — at any intra-compile parallelism. Any reported failure is a real
// miscompile at head (run oraql-fuzz on the seed to triage it).
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(1))
	f.Add(int64(14), uint8(12), uint8(2))
	f.Add(int64(500), uint8(30), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, stmts uint8, workers uint8) {
		// Keep each exec fast: one exec compiles the program under
		// nine configurations, and the per-input watchdog of the fuzz
		// worker flags multi-second execs as hangs.
		p := progen.Generate(seed, progen.Options{Stmts: int(stmts) % 40})
		div, err := Check(p, CheckOptions{CompileWorkers: int(workers)%8 + 1})
		if err != nil {
			t.Fatalf("harness error on seed %d: %v", seed, err)
		}
		if div != nil {
			t.Fatalf("MISCOMPILE seed=%d: %s\nsource:\n%s", seed, div, p.Source)
		}
	})
}
