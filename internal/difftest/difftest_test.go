package difftest

import (
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/progen"
)

// injectSource is the pinned fault-injection program: p aliases &a[2]
// through an offset no conservative analysis can resolve (the offset
// travels through an int array filled by a loop), so the query falls
// through to the ORAQL responder. A wrong optimistic no-alias lets the
// store-to-load forwarding passes forward the stale a[2] value past
// the aliasing store through p.
const injectSource = `int main() {
	double a[8];
	for (int z = 0; z < 8; z++) { a[z] = (double)z; }
	int m[4];
	for (int z = 0; z < 4; z++) { m[z] = z; }
	double* p = a + m[2];
	a[2] = 1.0;
	p[0] = 3.0;
	print("v ", a[2], "\n");
	return 0;
}
`

func injectProgram() *progen.Program {
	return &progen.Program{Seed: -1, FileName: "inject.mc", Source: injectSource}
}

// TestInjectedFaultDiverges checks the oracle end of the pinned
// scenario: the deliberately-wrong optimistic response makes the
// program print the stale value, and the sound variants stay clean.
func TestInjectedFaultDiverges(t *testing.T) {
	p := injectProgram()
	div, err := Check(p, CheckOptions{Variants: []Variant{InjectVariant()}})
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("injected optimistic responder did not diverge")
	}
	if div.Ref == div.Got {
		t.Fatalf("divergence with equal outputs: %+v", div)
	}

	clean, err := Check(p, CheckOptions{Variants: Variants()})
	if err != nil {
		t.Fatal(err)
	}
	if clean != nil {
		t.Fatalf("sound variants diverged on the pinned program: %s", clean)
	}
}

// TestInjectedFaultIsTriaged is the pinned acceptance test of the
// triage path: with a deliberately-wrong optimistic alias response
// injected, the harness must pin the divergence to the exact pass and
// guilty query, and emit a minimized reproducer of at most 25 lines.
func TestInjectedFaultIsTriaged(t *testing.T) {
	p := injectProgram()
	div, err := Check(p, CheckOptions{Variants: []Variant{InjectVariant()}})
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("no divergence to triage")
	}
	tr, err := TriageDivergence(div, irinterp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.PassIndex < 1 || tr.Pass == "" {
		t.Errorf("triage did not pin a pass: %+v", tr)
	}
	if len(tr.Queries) != 1 {
		t.Fatalf("guilty query set = %d queries, want exactly 1: %+v", len(tr.Queries), tr.Queries)
	}
	q := tr.Queries[0]
	if q.A == "" || q.B == "" {
		t.Errorf("guilty query lacks location descriptions: %+v", q)
	}
	if tr.GuiltySeq == "" || !strings.Contains(tr.GuiltySeq, "1") {
		t.Errorf("guilty sequence %q should contain an optimistic response", tr.GuiltySeq)
	}
	if tr.ReproLines > 25 {
		t.Errorf("reproducer has %d lines, want <= 25:\n%s", tr.ReproLines, tr.Reproducer)
	}
	// The reproducer must still be a valid program.
	if _, _, err := minic.Compile("repro.mc", tr.Reproducer, minic.Options{}); err != nil {
		t.Errorf("reproducer no longer compiles: %v\n%s", err, tr.Reproducer)
	}
	t.Logf("triage: pass %q (position %d), query #%d [%s vs %s], %d-line repro",
		tr.Pass, tr.PassIndex, q.Index, q.A, q.B, tr.ReproLines)
}

// TestCleanFuzzRun is the head-soundness smoke: a window of generated
// programs over the full sound variant matrix must be divergence-free.
// (CI runs 200+ programs through cmd/oraql-fuzz on top of this.)
func TestCleanFuzzRun(t *testing.T) {
	n := 15
	if testing.Short() {
		n = 5
	}
	res, err := Fuzz(FuzzOptions{N: n, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) > 0 {
		t.Fatalf("harness errors: %v", res.Errors)
	}
	if len(res.Divergences) > 0 {
		t.Fatalf("MISCOMPILE at head: %s\nsource:\n%s",
			res.Divergences[0].Variant, res.Divergences[0].Source)
	}
	if res.Programs != n {
		t.Errorf("ran %d programs, want %d", res.Programs, n)
	}
}

// TestInjectCampaignTriagesGeneratedProgram runs the fault-injection
// campaign over generated programs: the fully-optimistic responder
// must break at least one of them, and the triage must pin a pass and
// a non-empty guilty query set automatically.
func TestInjectCampaignTriagesGeneratedProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("inject campaign skipped in -short")
	}
	res, err := Fuzz(FuzzOptions{
		N: 30, Seed: 1, Variants: []Variant{InjectVariant()},
		Triage: true, MaxDivergences: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) == 0 {
		t.Fatal("no generated program diverged under the injected optimistic responder")
	}
	d := res.Divergences[0]
	if d.Triage == nil {
		t.Fatalf("divergence was not triaged: %s", d.TriageErr)
	}
	if d.Triage.Pass == "" || d.Triage.PassIndex < 1 {
		t.Errorf("no pass pinned: %+v", d.Triage)
	}
	if len(d.Triage.Queries) == 0 {
		t.Errorf("no guilty queries pinned: %+v", d.Triage)
	}
	if d.Triage.ReproLines >= countLines(d.Source) {
		t.Errorf("reducer made no progress: %d lines of %d", d.Triage.ReproLines, countLines(d.Source))
	}
}

// TestReduceSource exercises the reducer against a synthetic
// interestingness predicate: it must keep exactly the marked lines.
func TestReduceSource(t *testing.T) {
	src := strings.Repeat("noise();\n", 20) +
		"KEEP_A\n" + strings.Repeat("filler();\n", 13) + "KEEP_B\n"
	interesting := func(s string) bool {
		return strings.Contains(s, "KEEP_A") && strings.Contains(s, "KEEP_B")
	}
	out, tests := ReduceSource(src, interesting, 0)
	if got := countLines(out); got != 2 {
		t.Errorf("reduced to %d lines, want 2:\n%s", got, out)
	}
	if !interesting(out) {
		t.Error("reduction lost the interesting property")
	}
	if tests == 0 {
		t.Error("reducer reported zero predicate evaluations")
	}
}

// TestReduceSourceBlocks checks the block move: a brace-balanced
// region whose removal keeps the property must disappear whole.
func TestReduceSourceBlocks(t *testing.T) {
	src := "KEEP {\nx\ny\n}\nfor (...) {\nnested {\nz\n}\n}\n"
	interesting := func(s string) bool { return strings.Contains(s, "KEEP") }
	out, _ := ReduceSource(src, interesting, 0)
	if strings.Contains(out, "nested") || strings.Contains(out, "for") {
		t.Errorf("block not removed:\n%s", out)
	}
}

// TestDdmin checks 1-minimality on a synthetic multi-element fault.
func TestDdmin(t *testing.T) {
	// Fails iff the set contains both 3 and 17.
	fails := func(s []int) bool {
		has3, has17 := false, false
		for _, x := range s {
			if x == 3 {
				has3 = true
			}
			if x == 17 {
				has17 = true
			}
		}
		return has3 && has17
	}
	all := make([]int, 40)
	for i := range all {
		all[i] = i
	}
	got := ddmin(all, fails, 600)
	if len(got) != 2 {
		t.Fatalf("ddmin = %v, want [3 17]", got)
	}
	if !fails(got) {
		t.Errorf("ddmin result does not fail: %v", got)
	}
}
