package difftest

import (
	"fmt"
	"sort"
	"strings"

	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/passes"
	"github.com/oraql/go-oraql/internal/pipeline"
	"github.com/oraql/go-oraql/internal/report"
	"github.com/oraql/go-oraql/internal/verify"
)

// QueryInfo describes one guilty alias query in a triage report.
type QueryInfo struct {
	Index int    `json:"index"`
	Pass  string `json:"pass,omitempty"`
	Func  string `json:"func,omitempty"`
	A     string `json:"a"`
	B     string `json:"b"`
	LocA  string `json:"loc_a,omitempty"`
	LocB  string `json:"loc_b,omitempty"`
}

// Triage is the automated miscompile diagnosis: the minimal
// reproducer, the first guilty pass, and — for ORAQL-injected
// divergences — the minimal guilty query set.
type Triage struct {
	Seed    int64  `json:"seed"`
	Variant string `json:"variant"`

	// ArtifactID is the stable content-addressed handle of this
	// artifact (report.TriageArtifactID over reproducer + variant);
	// warehouse records, JSON reports, and /events lines all carry it.
	ArtifactID string `json:"artifact_id"`

	// Reproducer is the delta-debugged source; all bisection below ran
	// against it (smaller programs give stabler query streams).
	Reproducer  string `json:"reproducer"`
	ReproLines  int    `json:"repro_lines"`
	ReduceTests int    `json:"reduce_tests"`

	// PassIndex is the 1-based pipeline position of the first pass
	// whose prefix diverges; Pass its name.
	PassIndex     int    `json:"pass_index"`
	Pass          string `json:"pass"`
	PipelineTests int    `json:"pipeline_tests"`

	// GuiltySeq is the minimal failing response sequence (optimistic
	// exactly at the guilty queries); Queries describes them. Only set
	// for InjectOptimistic divergences.
	GuiltySeq  string      `json:"guilty_seq,omitempty"`
	Queries    []QueryInfo `json:"queries,omitempty"`
	QueryTests int         `json:"query_tests,omitempty"`
}

// scenario fixes (variant, file, run options) and evaluates divergence
// predicates against a per-source unoptimized reference.
type scenario struct {
	v    Variant
	file string
	run  irinterp.Options
}

// divergesSource reports whether the variant (full pipeline) diverges
// on src; any compile or reference failure counts as "not
// interesting", which is exactly what the reducer needs.
func (sc *scenario) divergesSource(src string) bool {
	ref, err := reference("triage-ref", sc.file, src, sc.v.Model, CheckOptions{Run: sc.run})
	if err != nil {
		return false
	}
	ok, _, err := sc.divergesCfg(sc.v.config("triage", sc.file, src, 0), ref)
	return err == nil && ok
}

// divergesCfg compiles cfg, runs it, and checks the output against the
// reference.
func (sc *scenario) divergesCfg(cfg pipeline.Config, ref string) (bool, *pipeline.CompileResult, error) {
	cr, err := pipeline.Compile(cfg)
	if err != nil {
		return false, nil, err
	}
	res, runErr := irinterp.Run(cr.Program, sc.run)
	spec := &verify.Spec{References: []string{ref}}
	if err := spec.Compile(); err != nil {
		return false, nil, err
	}
	var stdout string
	if res != nil {
		stdout = res.Stdout
	}
	return !spec.Check(stdout, runErr).OK, cr, nil
}

// pipelinePasses returns the pass list the variant runs.
func pipelinePasses(v Variant) []passes.Pass {
	if v.OptLevel == 1 {
		return passes.O1Pipeline().Passes
	}
	return passes.O3Pipeline().Passes
}

// TriageDivergence runs the full diagnosis on a divergence: reduce the
// source, bisect the pipeline, and (for injected-ORAQL divergences)
// bisect the response sequence to the minimal guilty query set.
func TriageDivergence(d *Divergence, run irinterp.Options) (*Triage, error) {
	sc := &scenario{v: d.Variant, file: d.Program.FileName, run: run}
	if !sc.divergesSource(d.Program.Source) {
		return nil, fmt.Errorf("triage: seed %d variant %s: divergence did not reproduce", d.Program.Seed, d.Variant.Name)
	}
	t := &Triage{Seed: d.Program.Seed, Variant: d.Variant.Name}

	// Step 1: minimize the source while it still diverges.
	t.Reproducer, t.ReduceTests = ReduceSource(d.Program.Source, sc.divergesSource, 0)
	t.ReproLines = countLines(t.Reproducer)
	t.ArtifactID = report.TriageArtifactID(t.Reproducer, d.Variant.Name)

	// Step 2: bisect the pipeline on the reduced program. The prefix
	// of zero passes equals the reference by construction, the full
	// pipeline diverges; binary-search the first diverging prefix.
	ref, err := reference("triage-ref", sc.file, t.Reproducer, sc.v.Model, CheckOptions{Run: sc.run})
	if err != nil {
		return nil, fmt.Errorf("triage: reduced reference: %w", err)
	}
	pipePasses := pipelinePasses(d.Variant)
	divergesAt := func(stop int) (bool, error) {
		cfg := sc.v.config("triage-bisect", sc.file, t.Reproducer, stop)
		ok, _, err := sc.divergesCfg(cfg, ref)
		t.PipelineTests++
		return ok, err
	}
	lo, hi := 0, len(pipePasses)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		bad, err := divergesAt(mid)
		if err != nil {
			return nil, fmt.Errorf("triage: pass bisection: %w", err)
		}
		if bad {
			hi = mid
		} else {
			lo = mid
		}
	}
	t.PassIndex = hi
	t.Pass = pipePasses[hi-1].Name()

	// Step 3: guilty-query bisection, only meaningful when the
	// divergence came from the injected optimistic responder.
	if d.Variant.InjectOptimistic {
		if err := sc.bisectQueries(t, ref); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// bisectQueries delta-debugs the optimistic response set: starting
// from "every unique query answered optimistically" (which diverges)
// it finds a minimal set of sequence positions whose optimistic answer
// still breaks the program, with everything else pessimistic.
func (sc *scenario) bisectQueries(t *Triage, ref string) error {
	// Size the sequence from the fully-optimistic compile.
	bad, cr, err := sc.divergesCfg(sc.v.config("triage-size", sc.file, t.Reproducer, 0), ref)
	if err != nil {
		return fmt.Errorf("triage: query sizing: %w", err)
	}
	if !bad {
		return fmt.Errorf("triage: reduced program no longer diverges fully optimistic")
	}
	n := cr.ORAQLStats().Unique()
	pad := 2*n + 64

	seqOf := func(set []int) oraql.Seq {
		seq := make(oraql.Seq, pad)
		for _, i := range set {
			seq[i] = true
		}
		return seq
	}
	fails := func(set []int) bool {
		cfg := sc.v.configWithSeq("triage-query", sc.file, t.Reproducer, seqOf(set))
		ok, _, err := sc.divergesCfg(cfg, ref)
		t.QueryTests++
		return err == nil && ok
	}

	// The all-pessimistic sequence must behave like the baseline; if
	// it does not, the divergence is not ORAQL's doing after all.
	if fails(nil) {
		return fmt.Errorf("triage: all-pessimistic sequence still diverges; not an ORAQL fault")
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	guilty := ddmin(all, fails, 600)
	sort.Ints(guilty)

	// Final compile with the minimal sequence: confirm and attribute.
	cfg := sc.v.configWithSeq("triage-final", sc.file, t.Reproducer, seqOf(guilty))
	bad, cr, err = sc.divergesCfg(cfg, ref)
	if err != nil {
		return fmt.Errorf("triage: final guilty compile: %w", err)
	}
	if !bad {
		return fmt.Errorf("triage: minimal guilty set does not reproduce the divergence")
	}
	records := cr.Records()
	maxIdx := 0
	for _, i := range guilty {
		if i > maxIdx {
			maxIdx = i
		}
		q := QueryInfo{Index: i, A: "<query drifted out of stream>", B: ""}
		if i < len(records) {
			rec := records[i]
			q.Pass, q.Func = rec.Pass, rec.Func
			q.A, q.B = rec.LocDescriptions()
			if la, lb := rec.SrcLocs(); la.IsValid() || lb.IsValid() {
				q.LocA, q.LocB = la.String(), lb.String()
			}
		}
		t.Queries = append(t.Queries, q)
	}
	t.GuiltySeq = seqOf(guilty)[:maxIdx+1].String()
	return nil
}

// ddmin is the classic delta-debugging minimization over an index set:
// it returns a 1-minimal subset for which fails still holds, spending
// at most budget predicate evaluations.
func ddmin(set []int, fails func([]int) bool, budget int) []int {
	tests := 0
	check := func(s []int) bool {
		if tests >= budget {
			return false
		}
		tests++
		return fails(s)
	}
	cur := set
	gran := 2
	for len(cur) > 1 && tests < budget {
		chunks := chunkSplit(cur, gran)
		reduced := false
		for _, c := range chunks {
			if len(c) < len(cur) && check(c) {
				cur, gran, reduced = c, 2, true
				break
			}
		}
		if !reduced {
			for i := range chunks {
				comp := exclude(cur, chunks[i])
				if len(comp) == 0 || len(comp) == len(cur) {
					continue
				}
				if check(comp) {
					cur, reduced = comp, true
					if gran > 2 {
						gran--
					}
					break
				}
			}
		}
		if !reduced {
			if gran >= len(cur) {
				break
			}
			gran *= 2
			if gran > len(cur) {
				gran = len(cur)
			}
		}
	}
	return cur
}

// chunkSplit splits set into gran nearly-equal contiguous chunks.
func chunkSplit(set []int, gran int) [][]int {
	if gran > len(set) {
		gran = len(set)
	}
	var out [][]int
	for i := 0; i < gran; i++ {
		lo := i * len(set) / gran
		hi := (i + 1) * len(set) / gran
		if lo < hi {
			out = append(out, set[lo:hi])
		}
	}
	return out
}

// exclude returns set minus the elements of sub (sub is a contiguous
// slice of set).
func exclude(set, sub []int) []int {
	drop := map[int]bool{}
	for _, x := range sub {
		drop[x] = true
	}
	var out []int
	for _, x := range set {
		if !drop[x] {
			out = append(out, x)
		}
	}
	return out
}

func countLines(src string) int {
	n := 0
	for _, l := range strings.Split(src, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}
