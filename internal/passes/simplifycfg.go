package passes

import (
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/ir"
)

// SimplifyCFG folds constant branches, deletes unreachable blocks, and
// merges straight-line block chains. It keeps the CFG canonical for
// the loop passes; it issues no alias queries.
type SimplifyCFG struct{}

// Name implements Pass.
func (*SimplifyCFG) Name() string { return "simplifycfg" }

// Run implements Pass.
func (p *SimplifyCFG) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	changed := false
	for {
		round := foldConstBranches(fn)
		round = removeUnreachable(fn) || round
		round = mergeChains(fn) || round
		if !round {
			break
		}
		changed = true
		ctx.Stats.Add(p.Name(), "Number of CFG simplification rounds", 1)
	}
	if !changed {
		return analysis.All()
	}
	return analysis.None() // block structure changed
}

func foldConstBranches(fn *ir.Func) bool {
	changed := false
	for _, b := range fn.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpBr || len(t.Succs) != 2 {
			continue
		}
		c, ok := constOf(t.Operands[0])
		if !ok {
			continue
		}
		taken, dropped := t.Succs[0], t.Succs[1]
		if c == 0 {
			taken, dropped = dropped, taken
		}
		t.Operands = nil
		t.Succs = []*ir.Block{taken}
		if dropped != taken {
			removePhiIncoming(dropped, b)
		}
		changed = true
	}
	return changed
}

func removePhiIncoming(blk, pred *ir.Block) {
	for _, in := range blk.Instrs {
		if in.Op != ir.OpPhi || in.Dead() {
			continue
		}
		for i := 0; i < len(in.Incoming); {
			if in.Incoming[i] == pred {
				in.Incoming = append(in.Incoming[:i], in.Incoming[i+1:]...)
				in.Operands = append(in.Operands[:i], in.Operands[i+1:]...)
			} else {
				i++
			}
		}
	}
}

func removeUnreachable(fn *ir.Func) bool {
	reachable := map[*ir.Block]bool{}
	stack := []*ir.Block{fn.Entry()}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reachable[b] {
			continue
		}
		reachable[b] = true
		stack = append(stack, b.Succs()...)
	}
	if len(reachable) == len(fn.Blocks) {
		return false
	}
	var kept []*ir.Block
	for _, b := range fn.Blocks {
		if reachable[b] {
			kept = append(kept, b)
		} else {
			for _, s := range b.Succs() {
				if reachable[s] {
					removePhiIncoming(s, b)
				}
			}
			for _, in := range b.Instrs {
				in.MarkDead()
			}
		}
	}
	fn.Blocks = kept
	// Dropped blocks may have defined values used by (now also
	// removed) code only; clean leftovers defensively.
	removeDeadCode(fn)
	return true
}

func mergeChains(fn *ir.Func) bool {
	changed := false
	for {
		merged := false
		predCount := map[*ir.Block]int{}
		for _, b := range fn.Blocks {
			for _, s := range b.Succs() {
				predCount[s]++
			}
		}
		for _, b := range fn.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpBr || len(t.Succs) != 1 {
				continue
			}
			c := t.Succs[0]
			if c == b || c == fn.Entry() || predCount[c] != 1 {
				continue
			}
			// Phis in c have exactly one incoming (from b): fold them.
			for _, in := range c.Instrs {
				if in.Op == ir.OpPhi && !in.Dead() {
					if len(in.Operands) != 1 {
						return changed // malformed; bail
					}
					fn.ReplaceAllUses(in, in.Operands[0])
					in.MarkDead()
				}
			}
			c.Compact()
			t.MarkDead()
			b.Compact()
			for _, in := range c.Instrs {
				in.Parent = b
			}
			b.Instrs = append(b.Instrs, c.Instrs...)
			c.Instrs = nil
			// Phis in c's successors now flow from b.
			for _, s := range b.Succs() {
				for _, in := range s.Instrs {
					if in.Op == ir.OpPhi && !in.Dead() {
						for i, ib := range in.Incoming {
							if ib == c {
								in.Incoming[i] = b
							}
						}
					}
				}
			}
			// Drop c from the block list.
			for i, x := range fn.Blocks {
				if x == c {
					fn.Blocks = append(fn.Blocks[:i], fn.Blocks[i+1:]...)
					break
				}
			}
			merged = true
			changed = true
			break // block list changed; restart scan
		}
		if !merged {
			return changed
		}
	}
}
