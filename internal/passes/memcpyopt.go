package passes

import (
	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/ir"
)

// MemCpyOpt forwards memory through memcpy: a load from the destination
// of a dominating memcpy reads from the source instead (when neither
// destination nor source bytes were clobbered in between), and a
// memcpy whose source is the destination of another memcpy is
// rechained. Both rewrites hinge on alias queries.
type MemCpyOpt struct{}

// Name implements Pass.
func (*MemCpyOpt) Name() string { return "MemCpy Optimization" }

// Run implements Pass.
func (p *MemCpyOpt) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	changed := false
	info := ctx.CFG(fn)
	walker := ctx.MemSSA(fn)
	q := ctx.Query(fn)

	for _, b := range info.RPO {
		for _, in := range b.Instrs {
			if in.Dead() || in.Op != ir.OpLoad {
				continue
			}
			loc := aa.LocOfLoad(in)
			def, unique := walker.ClobberingDef(in, loc)
			if !unique || def == nil || def.Op != ir.OpMemCpy || !info.DominatesInstr(def, in) {
				continue
			}
			// The load reads bytes the memcpy wrote. Replace the load
			// address dst+k by src+k when the access lies fully inside
			// the copied range and the source was not modified since.
			n, ok := constOf(def.Operands[2])
			if !ok {
				continue
			}
			dst, src := def.Operands[0], def.Operands[1]
			base, off, hasVar := decomposePtr(in.Operands[0])
			dBase, dOff, dVar := decomposePtr(dst)
			if hasVar || dVar || base != dBase {
				continue
			}
			k := off - dOff
			if k < 0 || k+in.Ty.Size() > n {
				continue
			}
			srcLoc := aa.MemLoc{Ptr: src, Size: aa.PreciseSize(n), Instr: def}
			if !walker.NoClobberBetween(def, in, srcLoc) {
				continue
			}
			bld := ir.NewBuilder(b)
			newPtr := &ir.Instr{Op: ir.OpGEP, Ty: ir.Ptr, Operands: []ir.Value{src}, Off: k, Loc: in.Loc}
			insertBefore(b, in, newPtr, fn)
			in.Operands[0] = newPtr
			_ = bld
			_ = q
			changed = true
			ctx.Stats.Add(p.Name(), "# loads forwarded through memcpy", 1)
		}
	}
	if !changed {
		return analysis.All()
	}
	removeDeadCode(fn)
	fn.Compact()
	return analysis.CFGOnly() // inserts GEPs in place, never edges
}

// decomposePtr mirrors BasicAA's GEP walk.
func decomposePtr(ptr ir.Value) (base ir.Value, off int64, hasVar bool) {
	base = ptr
	for depth := 0; depth < 64; depth++ {
		in, ok := base.(*ir.Instr)
		if !ok || in.Op != ir.OpGEP {
			return base, off, hasVar
		}
		off += in.Off
		if len(in.Operands) > 1 {
			if c, isC := in.Operands[1].(*ir.Const); isC {
				off += c.I * in.Scale
			} else {
				hasVar = true
			}
		}
		base = in.Operands[0]
	}
	return base, off, hasVar
}

// insertBefore places newIn immediately before anchor in block b and
// assigns it a fresh ID (never renumbering: VIDs must stay stable for
// ORAQL's query cache).
func insertBefore(b *ir.Block, anchor, newIn *ir.Instr, fn *ir.Func) {
	newIn.Parent = b
	newIn.ID = fn.AllocID()
	for i, x := range b.Instrs {
		if x == anchor {
			b.Instrs = append(b.Instrs[:i], append([]*ir.Instr{newIn}, b.Instrs[i:]...)...)
			return
		}
	}
	panic("passes: insertBefore anchor not found")
}
