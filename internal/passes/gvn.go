package passes

import (
	"fmt"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/ir"
)

// GVN is global value numbering: pure expressions with identical
// operands are unified across blocks under dominance, and loads are
// eliminated through the MemorySSA walker — a load is replaced by a
// dominating store's value (store-to-load forwarding) or by an earlier
// load with the same clobbering definition (redundant-load
// elimination). This is the pass the paper most often observes issuing
// the decisive queries (Fig. 3).
type GVN struct{}

// Name implements Pass.
func (*GVN) Name() string { return "Global Value Numbering" }

// Run implements Pass.
func (p *GVN) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	changed := false
	info := ctx.CFG(fn)
	walker := ctx.MemSSA(fn)
	q := ctx.Query(fn)

	// Pure-expression numbering over RPO with dominance.
	leaders := map[string]*ir.Instr{}
	for _, b := range info.RPO {
		for _, in := range b.Instrs {
			if in.Dead() || !isPureOp(in) {
				continue
			}
			key := exprKey(in)
			if lead, ok := leaders[key]; ok && info.DominatesInstr(lead, in) {
				fn.ReplaceAllUses(in, lead)
				in.MarkDead()
				changed = true
				ctx.Stats.Add(p.Name(), "# instructions eliminated", 1)
				continue
			}
			leaders[key] = in
		}
	}

	// Load elimination keyed by (pointer, type, clobbering definition).
	loadLeaders := map[string]*ir.Instr{}
	for _, b := range info.RPO {
		for _, in := range b.Instrs {
			if in.Dead() || in.Op != ir.OpLoad {
				continue
			}
			loc := aa.LocOfLoad(in)
			def, unique := walker.ClobberingDef(in, loc)
			if !unique {
				continue
			}
			// Store-to-load forwarding.
			if def != nil && def.Op == ir.OpStore && def.Operands[0].Type() == in.Ty {
				sLoc := aa.LocOfStore(def)
				if sLoc.Size.Known && loc.Size.Known && sLoc.Size.Bytes == loc.Size.Bytes &&
					ctx.AA.Alias(sLoc, loc, q) == aa.MustAlias &&
					info.DominatesInstr(def, in) {
					fn.ReplaceAllUses(in, def.Operands[0])
					in.MarkDead()
					changed = true
					ctx.Stats.Add(p.Name(), "# loads deleted", 1)
					continue
				}
			}
			// Redundant-load elimination: same pointer, same type, same
			// memory state.
			defID := -1
			if def != nil {
				defID = def.ID
			}
			key := fmt.Sprintf("%d|%s|%d", in.Operands[0].VID(), in.Ty, defID)
			if lead, ok := loadLeaders[key]; ok && !lead.Dead() && info.DominatesInstr(lead, in) {
				fn.ReplaceAllUses(in, lead)
				in.MarkDead()
				changed = true
				ctx.Stats.Add(p.Name(), "# loads deleted", 1)
				continue
			}
			loadLeaders[key] = in
		}
	}

	if removeDeadCode(fn) > 0 {
		changed = true
	}
	if !changed {
		return analysis.All()
	}
	return analysis.CFGOnly() // deletes instructions, never edges
}
