package passes

import (
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/cfg"
	"github.com/oraql/go-oraql/internal/ir"
)

// LoopRotate converts canonical top-tested loops into guarded
// bottom-tested form:
//
//	   preheader                    preheader: guard-cmp
//	       |                          /     \
//	   header: phis,cmp      ->   new.ph    exit(phis)
//	   /       \                    |         ^
//	body ... latch -> header      header'(phis) ... latch: cmp'
//
// After rotation the loop body is guaranteed to execute once the loop
// is entered, which is what unlocks LICM's load hoisting and store
// sinking — LLVM runs loop-rotate before LICM for exactly this reason,
// and the paper's LICM deltas depend on it.
type LoopRotate struct{}

// Name implements Pass.
func (*LoopRotate) Name() string { return "Loop Rotation" }

// Run implements Pass.
func (p *LoopRotate) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	changed := false
	for {
		info := ctx.CFG(fn)
		rotated := false
		for _, l := range info.Loops() {
			if p.rotate(fn, ctx, info, l) {
				rotated = true
				changed = true
				ctx.InvalidateAll(fn)
				break // CFG changed; re-analyse
			}
		}
		if !rotated {
			if !changed {
				return analysis.All()
			}
			return analysis.None() // restructured loop headers
		}
	}
}

// rotate transforms one loop if it matches the canonical shape.
func (p *LoopRotate) rotate(fn *ir.Func, ctx *Context, info *cfg.Info, l *cfg.Loop) bool {
	h := l.Header
	if l.Preheader == nil || len(l.Latches) != 1 || len(l.Exits) != 1 {
		return false
	}
	latch := l.Latches[0]
	exit := l.Exits[0]
	// Header must be exactly [phis..., cmp, condbr(body, exit)] with
	// the cmp used only by the branch.
	term := h.Term()
	if term == nil || len(term.Succs) != 2 {
		return false
	}
	var body *ir.Block
	exitIdx := -1
	if term.Succs[1] == exit && l.Contains(term.Succs[0]) {
		body, exitIdx = term.Succs[0], 1
	} else if term.Succs[0] == exit && l.Contains(term.Succs[1]) {
		body, exitIdx = term.Succs[1], 0
	} else {
		return false
	}
	if body == h || len(info.Preds[body]) != 1 || len(info.Preds[exit]) != 1 {
		return false
	}
	// A pre-existing phi in the exit block would need a three-way
	// merge; bail (does not occur for frontend-shaped loops).
	for _, in := range exit.Instrs {
		if !in.Dead() && in.Op == ir.OpPhi {
			return false
		}
	}
	// The latch must jump unconditionally to the header.
	lt := latch.Term()
	if lt == nil || lt.Op != ir.OpBr || len(lt.Succs) != 1 || lt.Succs[0] != h {
		return false
	}
	var phis []*ir.Instr
	var cmp *ir.Instr
	for _, in := range h.Instrs {
		if in.Dead() {
			continue
		}
		switch {
		case in.Op == ir.OpPhi:
			if cmp != nil {
				return false // phi after cmp: non-canonical
			}
			if len(in.Operands) != 2 {
				return false
			}
			phis = append(phis, in)
		case in == term:
		case in.Op == ir.OpICmp || in.Op == ir.OpFCmp:
			if cmp != nil {
				return false
			}
			cmp = in
		default:
			return false
		}
	}
	if cmp == nil || term.Operands[0] != ir.Value(cmp) || usedOutside(fn, cmp, term) {
		return false
	}
	// Phi incoming values, split by edge.
	init := map[*ir.Instr]ir.Value{}
	next := map[*ir.Instr]ir.Value{}
	for _, phi := range phis {
		for i, from := range phi.Incoming {
			switch from {
			case l.Preheader:
				init[phi] = phi.Operands[i]
			case latch:
				next[phi] = phi.Operands[i]
			default:
				return false
			}
		}
		if init[phi] == nil || next[phi] == nil {
			return false
		}
	}

	// Clone the comparison twice: guard (initial values) in the
	// preheader, bottom test (next values) in the latch.
	cloneCmp := func(subst map[*ir.Instr]ir.Value, name string) *ir.Instr {
		c := &ir.Instr{Op: cmp.Op, Ty: ir.I1, Pred: cmp.Pred, Name: name, Loc: cmp.Loc}
		for _, op := range cmp.Operands {
			if phi, ok := op.(*ir.Instr); ok {
				if v, isPhi := subst[phi]; isPhi {
					c.Operands = append(c.Operands, v)
					continue
				}
			}
			c.Operands = append(c.Operands, op)
		}
		return c
	}

	// New preheader between the guard and the loop body.
	newPH := fn.NewBlock("rot.ph")
	nb := ir.NewBuilder(newPH)
	nb.Br(body)

	// Guard in the old preheader.
	phTerm := l.Preheader.Term()
	guard := cloneCmp(init, "rot.guard")
	insertBefore(l.Preheader, phTerm, guard, fn)
	phTerm.Operands = []ir.Value{guard}
	if exitIdx == 1 {
		phTerm.Succs = []*ir.Block{newPH, exit}
	} else {
		phTerm.Succs = []*ir.Block{exit, newPH}
	}

	// Bottom test in the latch.
	bottom := cloneCmp(next, "rot.cmp")
	insertBefore(latch, lt, bottom, fn)
	lt.Operands = []ir.Value{bottom}
	if exitIdx == 1 {
		lt.Succs = []*ir.Block{body, exit}
	} else {
		lt.Succs = []*ir.Block{exit, body}
	}

	// Move the phis to the body head, rewiring incoming edges.
	for i := len(phis) - 1; i >= 0; i-- {
		phi := phis[i]
		removeFromBlock(phi, h)
		phi.Parent = body
		body.Instrs = append([]*ir.Instr{phi}, body.Instrs...)
		phi.Incoming = []*ir.Block{newPH, latch}
		phi.Operands = []ir.Value{init[phi], next[phi]}
	}

	// Exit phis merge the value observed by the failing test.
	loopBlocks := map[*ir.Block]bool{}
	for _, b := range l.Blocks {
		loopBlocks[b] = true
	}
	loopBlocks[newPH] = true
	for _, phi := range phis {
		exitPhi := &ir.Instr{Op: ir.OpPhi, Ty: phi.Ty, Name: phi.Name + ".lcssa",
			Operands: []ir.Value{init[phi], next[phi]},
			Incoming: []*ir.Block{l.Preheader, latch},
		}
		exitPhi.ID = fn.AllocID()
		exitPhi.Parent = exit
		// Replace uses of phi outside the loop.
		replaced := false
		for _, b := range fn.Blocks {
			if loopBlocks[b] || b == exit {
				continue
			}
			for _, in := range b.Instrs {
				for oi, op := range in.Operands {
					if op == ir.Value(phi) {
						in.Operands[oi] = exitPhi
						replaced = true
					}
				}
			}
		}
		// Uses in the exit block itself.
		for _, in := range exit.Instrs {
			if in == exitPhi {
				continue
			}
			for oi, op := range in.Operands {
				if op == ir.Value(phi) {
					in.Operands[oi] = exitPhi
					replaced = true
				}
			}
		}
		if replaced {
			exit.Instrs = append([]*ir.Instr{exitPhi}, exit.Instrs...)
		}
	}

	// The old header is now empty of phis; it still holds cmp and the
	// branch, both replaced — drop the block entirely by forwarding
	// nothing to it (it becomes unreachable).
	cmp.MarkDead()
	term.MarkDead()
	h.Compact()
	for i, b := range fn.Blocks {
		if b == h {
			fn.Blocks = append(fn.Blocks[:i], fn.Blocks[i+1:]...)
			break
		}
	}
	ctx.Stats.Add(p.Name(), "# loops rotated", 1)
	return true
}

func usedOutside(fn *ir.Func, def *ir.Instr, except *ir.Instr) bool {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dead() || in == except {
				continue
			}
			for _, op := range in.Operands {
				if op == ir.Value(def) {
					return true
				}
			}
		}
	}
	return false
}

func removeFromBlock(in *ir.Instr, b *ir.Block) {
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			return
		}
	}
}
