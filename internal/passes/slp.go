package passes

import (
	"sort"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/ir"
)

// SLPVectorize fuses groups of four isomorphic scalar computations that
// feed four stores to consecutive addresses into vector instructions
// (superword-level parallelism). Legality needs alias queries: the
// loads being fused, and any other reads in the fused region, must be
// disjoint from the stored range — the source of MiniFE's "+33% vector
// instructions" row in Fig. 6.
type SLPVectorize struct{}

// Name implements Pass.
func (*SLPVectorize) Name() string { return "SLP Vectorizer" }

// Run implements Pass.
func (p *SLPVectorize) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	changed := false
	// attempted remembers store groups that failed legality within this
	// Run invocation, so the group finder can skip them. It must be
	// local: Run executes concurrently for different functions (and
	// different compilations), and sharing it would both race and leak
	// verdicts across functions.
	attempted := map[*ir.Instr]bool{}
	for _, b := range fn.Blocks {
		for {
			group := findStoreGroup(b, attempted)
			if group == nil {
				break
			}
			if !p.vectorizeGroup(fn, ctx, b, group) {
				// Mark the lead store as attempted so we do not loop.
				attempted[group[0]] = true
				continue
			}
			changed = true
		}
	}
	if !changed {
		return analysis.All()
	}
	fn.Compact()
	removeDeadCode(fn)
	return analysis.CFGOnly() // rewrites instructions within blocks
}

// findStoreGroup locates four stores of the same scalar type to
// consecutive addresses (stride 8) off one base, in ascending offset
// order, with no duplicate offsets, skipping groups whose lead store
// already failed legality this Run (attempted).
func findStoreGroup(b *ir.Block, attempted map[*ir.Instr]bool) []*ir.Instr {
	type cand struct {
		in  *ir.Instr
		off int64
	}
	byBase := map[int64][]cand{}
	var baseOrder []int64
	for _, in := range b.Instrs {
		if in.Dead() || in.Op != ir.OpStore {
			continue
		}
		vt := in.Operands[0].Type()
		if vt != ir.F64 && vt != ir.I64 {
			continue
		}
		base, off := slpDecompose(in.Operands[1])
		k := base.VID()
		if _, seen := byBase[k]; !seen {
			baseOrder = append(baseOrder, k)
		}
		byBase[k] = append(byBase[k], cand{in, off})
	}
	for _, k := range baseOrder {
		cands := byBase[k]
		if len(cands) < 4 {
			continue
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].off < cands[j].off })
		for i := 0; i+3 < len(cands); i++ {
			ok := true
			for j := 1; j < 4; j++ {
				if cands[i+j].off != cands[i].off+int64(8*j) {
					ok = false
					break
				}
			}
			if !ok || attempted[cands[i].in] {
				continue
			}
			// Duplicate offsets within the window disqualify.
			if i+4 < len(cands) && cands[i+4].off == cands[i+3].off {
				continue
			}
			if i > 0 && cands[i-1].off == cands[i].off {
				continue
			}
			return []*ir.Instr{cands[i].in, cands[i+1].in, cands[i+2].in, cands[i+3].in}
		}
	}
	return nil
}

// laneNode is one node of the isomorphic tree match: for each of the 4
// lanes either the same opcode (recurse) or a common scalar / matched
// consecutive loads.
func (p *SLPVectorize) vectorizeGroup(fn *ir.Func, ctx *Context, b *ir.Block, stores []*ir.Instr) bool {
	idx := map[*ir.Instr]int{}
	for i, in := range b.Instrs {
		idx[in] = i
	}
	grouped := map[*ir.Instr]bool{}
	for _, s := range stores {
		grouped[s] = true
	}
	var groupLoads [][]*ir.Instr // load quads, lane-ordered

	// match returns, for the 4 lane values, a builder closure producing
	// the vector value, or nil if not isomorphic.
	var match func(vals [4]ir.Value, depth int) func(bld *builderAt) ir.Value
	match = func(vals [4]ir.Value, depth int) func(bld *builderAt) ir.Value {
		if depth > 6 {
			return nil
		}
		// Common scalar across lanes -> splat. Constants compare by
		// value (every literal is a distinct *ir.Const object).
		if sameLaneScalar(vals) {
			v := vals[0]
			return func(bld *builderAt) ir.Value { return bld.splat(v) }
		}
		ins := [4]*ir.Instr{}
		for i, v := range vals {
			in, ok := v.(*ir.Instr)
			if !ok || in.Parent != b {
				return nil
			}
			ins[i] = in
		}
		op := ins[0].Op
		for _, in := range ins[1:] {
			if in.Op != op {
				return nil
			}
		}
		switch op {
		case ir.OpLoad:
			base0, off0 := slpDecompose(ins[0].Operands[0])
			for i := 1; i < 4; i++ {
				bi, oi := slpDecompose(ins[i].Operands[0])
				if bi != base0 || oi != off0+int64(8*i) {
					return nil
				}
			}
			quad := []*ir.Instr{ins[0], ins[1], ins[2], ins[3]}
			groupLoads = append(groupLoads, quad)
			lead := ins[0]
			return func(bld *builderAt) ir.Value { return bld.vload(lead) }
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
			var l, r [4]ir.Value
			for i := 0; i < 4; i++ {
				l[i], r[i] = ins[i].Operands[0], ins[i].Operands[1]
			}
			lf := match(l, depth+1)
			if lf == nil {
				return nil
			}
			rf := match(r, depth+1)
			if rf == nil {
				return nil
			}
			elem := ins[0].Ty
			return func(bld *builderAt) ir.Value {
				return bld.bin(op, elem, lf(bld), rf(bld))
			}
		}
		return nil
	}

	var vals [4]ir.Value
	for i, s := range stores {
		vals[i] = s.Operands[0]
	}
	rootF := match(vals, 0)
	if rootF == nil {
		return false
	}

	// Region safety: compute span [min, max] over grouped instrs.
	minI, maxI := idx[stores[0]], idx[stores[0]]
	consider := func(in *ir.Instr) {
		if idx[in] < minI {
			minI = idx[in]
		}
		if idx[in] > maxI {
			maxI = idx[in]
		}
	}
	for _, s := range stores {
		consider(s)
	}
	for _, quad := range groupLoads {
		for _, l := range quad {
			grouped[l] = true
			consider(l)
		}
	}
	// Alias queries: stored range vs every grouped load and every other
	// read in the span; other writers in the span disqualify outright.
	q := ctx.Query(fn)
	storeLocs := make([]aa.MemLoc, len(stores))
	for i, s := range stores {
		storeLocs[i] = aa.LocOfStore(s)
	}
	checkDisjoint := func(loc aa.MemLoc) bool {
		for _, sl := range storeLocs {
			if ctx.AA.Alias(sl, loc, q) != aa.NoAlias {
				return false
			}
		}
		return true
	}
	for _, quad := range groupLoads {
		for _, l := range quad {
			if !checkDisjoint(aa.LocOfLoad(l)) {
				return false
			}
		}
	}
	for i := minI; i <= maxI; i++ {
		in := b.Instrs[i]
		if in.Dead() || grouped[in] {
			continue
		}
		if in.WritesMemory() {
			return false
		}
		if in.ReadsMemory() {
			if in.Op != ir.OpLoad || !checkDisjoint(aa.LocOfLoad(in)) {
				return false
			}
		}
	}

	// Emit the vector code before the last grouped store.
	anchor := b.Instrs[maxI]
	bld := &builderAt{fn: fn, b: b, anchor: anchor, splats: map[ir.Value]ir.Value{}, vloads: map[*ir.Instr]ir.Value{}}
	vec := rootF(bld)
	vstore := &ir.Instr{Op: ir.OpStore, Ty: ir.Void,
		Operands: []ir.Value{vec, stores[0].Operands[1]}, TBAA: stores[0].TBAA, Loc: stores[0].Loc}
	insertBefore(b, anchor, vstore, fn)
	bld.count++
	for _, s := range stores {
		s.MarkDead()
	}
	ctx.Stats.Add(p.Name(), "# vector instructions generated", int64(bld.count))
	return true
}

// sameLaneScalar reports whether all four lane values are the same
// scalar: identical SSA values, or constants with equal payloads.
func sameLaneScalar(vals [4]ir.Value) bool {
	if vals[0] == vals[1] && vals[1] == vals[2] && vals[2] == vals[3] {
		return true
	}
	c0, ok := vals[0].(*ir.Const)
	if !ok {
		return false
	}
	for _, v := range vals[1:] {
		c, ok := v.(*ir.Const)
		if !ok || c.Ty != c0.Ty || c.I != c0.I || c.F != c0.F || c.Str != c0.Str {
			return false
		}
	}
	return true
}

// slpDecompose walks constant-offset GEP links, stopping at the first
// variable-index GEP (which becomes the symbolic base): store groups
// like blk[0..3] with blk = A + e*4 share that GEP as their base.
func slpDecompose(ptr ir.Value) (base ir.Value, off int64) {
	base = ptr
	for depth := 0; depth < 64; depth++ {
		in, ok := base.(*ir.Instr)
		if !ok || in.Op != ir.OpGEP {
			return base, off
		}
		if len(in.Operands) > 1 {
			c, isC := in.Operands[1].(*ir.Const)
			if !isC {
				return base, off // variable index: symbolic base
			}
			off += c.I * in.Scale
		}
		off += in.Off
		base = in.Operands[0]
	}
	return base, off
}

// builderAt emits vector instructions before an anchor instruction.
type builderAt struct {
	fn     *ir.Func
	b      *ir.Block
	anchor *ir.Instr
	splats map[ir.Value]ir.Value
	vloads map[*ir.Instr]ir.Value
	count  int
}

func (bld *builderAt) emit(in *ir.Instr) ir.Value {
	insertBefore(bld.b, bld.anchor, in, bld.fn)
	bld.count++
	return in
}

func (bld *builderAt) splat(v ir.Value) ir.Value {
	if s, ok := bld.splats[v]; ok {
		return s
	}
	s := bld.emit(&ir.Instr{Op: ir.OpVSplat, Ty: ir.VecType(v.Type(), 4), Operands: []ir.Value{v}, Name: "slp.splat"})
	bld.splats[v] = s
	return s
}

func (bld *builderAt) vload(lead *ir.Instr) ir.Value {
	if v, ok := bld.vloads[lead]; ok {
		return v
	}
	v := bld.emit(&ir.Instr{Op: ir.OpLoad, Ty: ir.VecType(lead.Ty, 4),
		Operands: []ir.Value{lead.Operands[0]}, TBAA: lead.TBAA, Loc: lead.Loc, Name: "slp.load"})
	bld.vloads[lead] = v
	return v
}

func (bld *builderAt) bin(op ir.Opcode, elem *ir.Type, x, y ir.Value) ir.Value {
	return bld.emit(&ir.Instr{Op: op, Ty: ir.VecType(elem, 4), Operands: []ir.Value{x, y}, Name: "slp.op"})
}
