package passes

import (
	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/cfg"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/mssa"
)

// Sink moves instructions into the successor block that uses them when
// the value is used in only one successor subtree, shortening live
// ranges on paths that never need the value (the machine-code-sinking
// analogue; GridMini's device compilation reports it as a query
// source). Loads sink only when no clobber can occur between the old
// and new position, which is an alias query.
type Sink struct{}

// Name implements Pass.
func (*Sink) Name() string { return "Machine Code Sinking" }

// Run implements Pass.
func (p *Sink) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	info := ctx.CFG(fn)
	walker := ctx.MemSSA(fn)
	changed := false
	for _, b := range info.RPO {
		succs := b.Succs()
		if len(succs) != 2 {
			continue
		}
		// Candidates scanned bottom-up so chains sink together.
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in.Dead() || in.IsTerminator() {
				continue
			}
			if !isPureOp(in) && in.Op != ir.OpLoad {
				continue
			}
			target := soleUserBlock(fn, info, in, succs)
			if target == nil || len(info.Preds[target]) != 1 {
				continue
			}
			if hasPhiUse(fn, in) {
				continue
			}
			if in.Op == ir.OpLoad {
				// The load moves past the branch into target: nothing
				// between (trivially) but target's preceding
				// instructions are none — the move is safe only if no
				// clobber sits between old and new position; the new
				// position is target's head, so check the tail of b.
				if !tailClobberFree(walker, b, i, aa.LocOfLoad(in)) {
					continue
				}
			}
			moveToBlockHead(in, target)
			changed = true
			ctx.Stats.Add(p.Name(), "# instructions sunk", 1)
		}
	}
	if !changed {
		return analysis.All()
	}
	return analysis.CFGOnly() // moves instructions between existing blocks
}

// soleUserBlock returns the single successor (from succs) that
// dominates every use of in, or nil.
func soleUserBlock(fn *ir.Func, info *cfg.Info, def *ir.Instr, succs []*ir.Block) *ir.Block {
	var target *ir.Block
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dead() {
				continue
			}
			for _, op := range in.Operands {
				if op != ir.Value(def) {
					continue
				}
				var cand *ir.Block
				for _, s := range succs {
					if info.Reachable(s) && info.Dominates(s, in.Parent) {
						cand = s
						break
					}
				}
				if cand == nil {
					return nil // used outside both subtrees (or in b itself)
				}
				if target == nil {
					target = cand
				} else if target != cand {
					return nil
				}
			}
		}
	}
	return target
}

func hasPhiUse(fn *ir.Func, def *ir.Instr) bool {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dead() || in.Op != ir.OpPhi {
				continue
			}
			for _, op := range in.Operands {
				if op == ir.Value(def) {
					return true
				}
			}
		}
	}
	return false
}

func tailClobberFree(walker *mssa.Walker, b *ir.Block, fromIdx int, loc aa.MemLoc) bool {
	for i := fromIdx + 1; i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		if !in.Dead() && walker.AA.InstrMayClobberLoc(in, loc, &aa.QueryCtx{Pass: "Machine Code Sinking", Func: b.Parent}) {
			return false
		}
	}
	return true
}

func moveToBlockHead(in *ir.Instr, target *ir.Block) {
	b := in.Parent
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			break
		}
	}
	// Insert after any leading phis.
	at := 0
	for at < len(target.Instrs) && target.Instrs[at].Op == ir.OpPhi {
		at++
	}
	target.Instrs = append(target.Instrs[:at], append([]*ir.Instr{in}, target.Instrs[at:]...)...)
	in.Parent = target
}

// ADCE removes side-effect-free instructions whose values are unused,
// iterating to a fixed point (aggressive dead-code elimination).
type ADCE struct{}

// Name implements Pass.
func (*ADCE) Name() string { return "ADCE" }

// Run implements Pass.
func (p *ADCE) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	n := removeDeadCode(fn)
	if n > 0 {
		ctx.Stats.Add(p.Name(), "# instructions removed", int64(n))
		fn.Compact()
		return analysis.CFGOnly() // deletes instructions, never edges
	}
	return analysis.All()
}
