package passes_test

import (
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/passes"
)

// compile runs the frontend + O3 pipeline (optionally with a fully
// optimistic ORAQL pass) and returns the module plus statistics.
func compile(t testing.TB, src string, optimistic bool) (*ir.Module, *passes.StatsRegistry) {
	t.Helper()
	host, _, err := minic.Compile("test.mc", src, minic.Options{})
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	mgr := aa.NewManager(host, aa.DefaultChain(host)...)
	if optimistic {
		mgr.Append(oraql.New(host, oraql.Options{}))
	}
	stats := passes.NewStats()
	ctx := &passes.Context{Module: host, AA: mgr, Stats: stats}
	passes.O3Pipeline().Run(ctx)
	if err := ir.Verify(host); err != nil {
		t.Fatalf("post-opt verify: %v\n%s", err, host.String())
	}
	return host, stats
}

// runOut interprets a module and returns stdout.
func runOut(t testing.TB, m *ir.Module) string {
	t.Helper()
	res, err := irinterp.Run(&irinterp.Program{Host: m}, irinterp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Stdout
}

// compileO0 runs only the frontend (no optimization).
func compileO0(t testing.TB, src string) *ir.Module {
	t.Helper()
	host, _, err := minic.Compile("test.mc", src, minic.Options{})
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	return host
}

// semanticsPreserved checks O0 and O3 outputs match.
func semanticsPreserved(t *testing.T, src string) (string, *passes.StatsRegistry) {
	t.Helper()
	ref := runOut(t, compileO0(t, src))
	opt, stats := compile(t, src, false)
	got := runOut(t, opt)
	if got != ref {
		t.Fatalf("optimization changed semantics:\n O0: %q\n O3: %q\nIR:\n%s", ref, got, opt.String())
	}
	return got, stats
}

func TestConstantFolding(t *testing.T) {
	src := `
int main() {
	int x = 6 * 7;
	double y = 1.5 + 2.5;
	print(x, " ", y, "\n");
	return 0;
}`
	out, _ := semanticsPreserved(t, src)
	if out != "42 4\n" {
		t.Errorf("out = %q", out)
	}
}

func TestEarlyCSELoadForwarding(t *testing.T) {
	src := `
int main() {
	double a[4];
	double b[4];
	a[0] = 1.5;
	b[0] = 2.5;
	double x = a[0];
	double y = a[0];
	print(x + y, "\n");
	return 0;
}`
	_, stats := semanticsPreserved(t, src)
	if stats.Get("Early CSE", "# instructions eliminated") == 0 {
		t.Error("expected CSE to eliminate the redundant load")
	}
}

func TestGVNStoreToLoadForwarding(t *testing.T) {
	src := `
int main() {
	double a[8];
	a[3] = 9.5;
	double s = 0.0;
	if (a[3] > 1.0) {
		s = a[3] * 2.0;
	}
	print(s, "\n");
	return 0;
}`
	out, _ := semanticsPreserved(t, src)
	if out != "19\n" {
		t.Errorf("out = %q", out)
	}
}

func TestDSEOverwrittenStore(t *testing.T) {
	src := `
int main() {
	double a[2];
	a[0] = 1.0;
	a[0] = 2.0;
	print(a[0], "\n");
	return 0;
}`
	_, stats := semanticsPreserved(t, src)
	if stats.Get("Dead Store Elimination", "# stores deleted") == 0 {
		t.Error("the overwritten store must be deleted")
	}
}

func TestDSEBlockedByInterveningRead(t *testing.T) {
	src := `
int main() {
	double a[2];
	a[0] = 1.0;
	double x = a[0];
	a[0] = 2.0;
	print(x + a[0], "\n");
	return 0;
}`
	out, _ := semanticsPreserved(t, src)
	if out != "3\n" {
		t.Errorf("out = %q", out)
	}
}

func TestLICMHoistsInvariantLoad(t *testing.T) {
	src := `
int main() {
	double coef[1];
	double out[64];
	coef[0] = 2.5;
	double s = 0.0;
	for (int i = 0; i < 64; i++) {
		out[i] = coef[0] * (double)i;
	}
	for (int i = 0; i < 64; i++) {
		s = s + out[i];
	}
	print(s, "\n");
	return 0;
}`
	_, stats := semanticsPreserved(t, src)
	if stats.Get("Loop Invariant Code Motion", "# loads hoisted or sunk") == 0 {
		t.Error("coef[0] must be hoisted out of the loop")
	}
}

func TestLoopRotation(t *testing.T) {
	src := `
int main() {
	int s = 0;
	for (int i = 0; i < 10; i++) {
		s = s + i;
	}
	print(s, "\n");
	return 0;
}`
	out, stats := semanticsPreserved(t, src)
	if out != "45\n" {
		t.Errorf("out = %q", out)
	}
	if stats.Get("Loop Rotation", "# loops rotated") == 0 {
		t.Error("the counted loop must be rotated")
	}
}

func TestLoopRotationZeroTrip(t *testing.T) {
	src := `
int zero() {
	return 0;
}
int main() {
	int n = zero();
	double a[4];
	a[0] = 5.0;
	for (int i = 0; i < n; i++) {
		a[0] = 99.0;
	}
	print(a[0], "\n");
	return 0;
}`
	out, _ := semanticsPreserved(t, src)
	if out != "5\n" {
		t.Errorf("zero-trip rotated loop must not execute: %q", out)
	}
}

func TestLoopDeletionDeadLoop(t *testing.T) {
	src := `
int main() {
	int s = 0;
	for (int i = 0; i < 100; i++) {
		int dead = i * 3 + 1;
	}
	for (int i = 0; i < 5; i++) {
		s = s + i;
	}
	print(s, "\n");
	return 0;
}`
	out, stats := semanticsPreserved(t, src)
	if out != "10\n" {
		t.Errorf("out = %q", out)
	}
	if stats.Get("Loop Deletion", "# deleted loops") == 0 {
		t.Error("the dead loop must be deleted")
	}
}

func TestVectorizeIndependentLoop(t *testing.T) {
	src := `
int main() {
	double a[64];
	double b[64];
	double c[64];
	for (int i = 0; i < 64; i++) {
		a[i] = (double)i;
		b[i] = (double)(i * 2);
	}
	for (int i = 0; i < 64; i++) {
		c[i] = a[i] * b[i] + 1.0;
	}
	double s = 0.0;
	for (int i = 0; i < 64; i++) {
		s = s + c[i];
	}
	print(s, "\n");
	return 0;
}`
	_, stats := semanticsPreserved(t, src)
	if stats.Get("Loop Vectorizer", "# vectorized loops") == 0 {
		t.Error("the independent elementwise loop must vectorize (distinct allocas)")
	}
}

func TestVectorizeRejectsTrueDependence(t *testing.T) {
	// a[i+1] = f(a[i]) must never vectorize, even fully optimistic:
	// the conservative chain cannot prove it, and with optimistic
	// answers the output would change — here we check the pessimistic
	// (default-chain) compilation keeps it scalar AND correct.
	src := `
int main() {
	double a[32];
	for (int i = 0; i < 32; i++) {
		a[i] = (double)i;
	}
	for (int i = 0; i < 31; i++) {
		a[i+1] = a[i] * 0.5 + a[i+1];
	}
	print(checksum(a, 32), "\n");
	return 0;
}`
	out, _ := semanticsPreserved(t, src)
	if out == "" {
		t.Fatal("no output")
	}
}

func TestVectorizeIntReduction(t *testing.T) {
	src := `
int main() {
	int a[64];
	for (int i = 0; i < 64; i++) {
		a[i] = i;
	}
	int s = 5;
	for (int i = 0; i < 64; i++) {
		s = s + a[i];
	}
	print(s, "\n");
	return 0;
}`
	out, _ := semanticsPreserved(t, src)
	if out != "2021\n" { // 5 + 64*63/2
		t.Errorf("reduction = %q", out)
	}
}

func TestVectorizeRemainderLoop(t *testing.T) {
	// Trip count 13 = 3 vector iterations + 1 scalar remainder.
	src := `
int main() {
	double a[13];
	double b[13];
	for (int i = 0; i < 13; i++) {
		a[i] = (double)i;
	}
	for (int i = 0; i < 13; i++) {
		b[i] = a[i] * 3.0;
	}
	print(checksum(b, 13), "\n");
	return 0;
}`
	out, _ := semanticsPreserved(t, src)
	if out == "" {
		t.Fatal("no output")
	}
}

func TestSLPVectorizesIsomorphicStores(t *testing.T) {
	src := `
void kernel4(double* restrict out, double* restrict in, double h) {
	out[0] = in[0] * h + 1.5;
	out[1] = in[1] * h + 1.5;
	out[2] = in[2] * h + 1.5;
	out[3] = in[3] * h + 1.5;
}
int main() {
	double a[4];
	double b[4];
	for (int i = 0; i < 4; i++) {
		a[i] = (double)(i + 1);
	}
	kernel4(b, a, 2.0);
	print(checksum(b, 4), "\n");
	return 0;
}`
	_, stats := semanticsPreserved(t, src)
	if stats.Get("SLP Vectorizer", "# vector instructions generated") == 0 {
		t.Error("the restrict-qualified 4-wide kernel must SLP-vectorize")
	}
}

func TestSLPBlockedWithoutRestrict(t *testing.T) {
	src := `
void kernel4(double* out, double* in, double h) {
	out[0] = in[0] * h + 1.5;
	out[1] = in[1] * h + 1.5;
	out[2] = in[2] * h + 1.5;
	out[3] = in[3] * h + 1.5;
}
int main() {
	double a[8];
	for (int i = 0; i < 8; i++) {
		a[i] = (double)(i + 1);
	}
	kernel4(a + 1, a, 2.0);
	print(checksum(a, 8), "\n");
	return 0;
}`
	out, stats := semanticsPreserved(t, src)
	if stats.Get("SLP Vectorizer", "# vector instructions generated") != 0 {
		t.Error("overlapping (non-restrict) pointers must block SLP")
	}
	if out == "" {
		t.Fatal("no output")
	}
}

func TestOptimisticEnablesMore(t *testing.T) {
	// Through pointer parameters the baseline cannot vectorize; fully
	// optimistic ORAQL can (the arrays are truly disjoint, so the
	// output must be unchanged).
	src := `
void axpy(double* y, double* x, double a, int n) {
	for (int i = 0; i < n; i++) {
		y[i] = y[i] + x[i] * a;
	}
}
int main() {
	double x[64];
	double y[64];
	for (int i = 0; i < 64; i++) {
		x[i] = (double)i;
		y[i] = 1.0;
	}
	for (int r = 0; r < 4; r++) {
		axpy(y, x, 0.5, 64);
	}
	print(checksum(y, 64), "\n");
	return 0;
}`
	ref := runOut(t, compileO0(t, src))
	base, baseStats := compile(t, src, false)
	opt, optStats := compile(t, src, true)
	if got := runOut(t, base); got != ref {
		t.Fatalf("baseline broke semantics: %q vs %q", got, ref)
	}
	if got := runOut(t, opt); got != ref {
		t.Fatalf("optimistic broke semantics on a no-alias program: %q vs %q", got, ref)
	}
	bv := baseStats.Get("Loop Vectorizer", "# vectorized loops")
	ov := optStats.Get("Loop Vectorizer", "# vectorized loops")
	if ov <= bv {
		t.Errorf("optimism must enable more vectorization: %d -> %d", bv, ov)
	}
}

func TestSimplifyCFGFoldsConstBranch(t *testing.T) {
	src := `
int main() {
	int x = 3;
	if (x > 5) {
		print("big\n");
	} else {
		print("small\n");
	}
	return 0;
}`
	m, _ := compile(t, src, false)
	out := runOut(t, m)
	if out != "small\n" {
		t.Errorf("out = %q", out)
	}
	mainFn := m.FuncByName("main")
	if strings.Contains(mainFn.String(), "big") {
		t.Error("the dead branch should be folded away entirely")
	}
}

func TestMemCpyForwarding(t *testing.T) {
	src := `
int main() {
	double a[4];
	double b[4];
	a[0] = 1.25;
	a[1] = 2.25;
	memcpy(b, a, 32);
	print(b[0] + b[1], "\n");
	return 0;
}`
	out, _ := semanticsPreserved(t, src)
	if out != "3.5\n" {
		t.Errorf("out = %q", out)
	}
}

func TestSinkIntoBranch(t *testing.T) {
	src := `
int main() {
	double a[4];
	a[0] = 2.0;
	for (int i = 0; i < 10; i++) {
		double heavy = a[0] * 3.0 + 1.0;
		if (i == 9) {
			print(heavy, "\n");
		}
	}
	return 0;
}`
	out, _ := semanticsPreserved(t, src)
	if out != "7\n" {
		t.Errorf("out = %q", out)
	}
}

func TestO1PipelineAlsoSound(t *testing.T) {
	src := `
int main() {
	double a[16];
	for (int i = 0; i < 16; i++) {
		a[i] = (double)i * 1.5;
	}
	print(checksum(a, 16), "\n");
	return 0;
}`
	host, _, err := minic.Compile("test.mc", src, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := runOut(t, compileO0(t, src))
	mgr := aa.NewManager(host, aa.DefaultChain(host)...)
	ctx := &passes.Context{Module: host, AA: mgr, Stats: passes.NewStats()}
	passes.O1Pipeline().Run(ctx)
	if err := ir.Verify(host); err != nil {
		t.Fatal(err)
	}
	if got := runOut(t, host); got != ref {
		t.Errorf("O1 changed semantics: %q vs %q", got, ref)
	}
}
