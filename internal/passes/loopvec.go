package passes

import (
	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/cfg"
	"github.com/oraql/go-oraql/internal/ir"
)

// LoopVectorize vectorizes canonical innermost counted loops with a
// vector factor of 4: consecutive loads/stores become vector memory
// ops, scalar arithmetic becomes vector arithmetic, and a scalar
// epilogue loop handles the remainder. Legality hinges on alias
// queries — every store must be disjoint from every other memory
// access in the body — which is exactly where optimistic ORAQL answers
// unlock the "# vectorized loops" gains of Fig. 6 (MiniGMG +33%).
//
// Floating-point reductions are rejected (vectorizing them reorders
// rounding, which default FP semantics forbid); integer add reductions
// are vectorized.
type LoopVectorize struct{}

// Name implements Pass.
func (*LoopVectorize) Name() string { return "Loop Vectorizer" }

// Width is the vectorization factor.
const vecWidth = 4

// Run implements Pass.
func (p *LoopVectorize) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	changed := false
	// Headers of loops already vectorized (the remainder loop reuses
	// the original header) must not be vectorized again.
	skip := map[*ir.Block]bool{}
	for {
		info := ctx.CFG(fn)
		var done bool
		for _, l := range info.Loops() {
			if skip[l.Header] || !isInnermost(l, info) {
				continue
			}
			plan := analyzeLoop(fn, ctx, l)
			if plan == nil {
				continue
			}
			skip[plan.header] = true
			vectorizeLoop(fn, plan)
			ctx.Stats.Add(p.Name(), "# vectorized loops", 1)
			ctx.Stats.Add(p.Name(), "# vector instructions generated", int64(plan.vectorInstrs))
			changed = true
			done = true
			ctx.InvalidateAll(fn)
			break // CFG changed; re-analyse
		}
		if !done {
			if !changed {
				return analysis.All()
			}
			return analysis.None() // inserted vector and remainder loops
		}
	}
}

func isInnermost(l *cfg.Loop, info *cfg.Info) bool {
	for _, other := range info.Loops() {
		if other.Parent == l {
			return false
		}
	}
	return true
}

// vecPlan captures the legality analysis of one loop.
type vecPlan struct {
	header, body *ir.Block
	indPhi       *ir.Instr // induction phi, step 1
	indInit      ir.Value
	indStep      *ir.Instr // the add i,1
	bound        ir.Value  // loop-invariant n in  i < n
	cmp          *ir.Instr
	exit         *ir.Block
	preheader    *ir.Block

	// reductions: integer add chains.
	reductions []*reduction

	// address classification per memory op.
	addr map[*ir.Instr]addrClass

	vectorInstrs int
}

type reduction struct {
	phi  *ir.Instr // header phi
	init ir.Value  // preheader incoming
	add  *ir.Instr // body add(phi, x) or add(x, phi)
}

type addrKind int

const (
	addrConsecutive addrKind = iota // base + indPhi*elem + constOff
	addrInvariant
)

type addrClass struct {
	kind addrKind
	base ir.Value
	off  int64
}

// analyzeLoop returns a plan, or nil if the loop cannot be vectorized.
func analyzeLoop(fn *ir.Func, ctx *Context, l *cfg.Loop) *vecPlan {
	if len(l.Blocks) != 2 || l.Preheader == nil || len(l.Latches) != 1 || len(l.Exits) != 1 {
		return nil
	}
	header := l.Header
	body := l.Latches[0]
	if body == header || l.Blocks[0] != header && l.Blocks[1] != header {
		return nil
	}
	// Header: phis, then one icmp, then the conditional branch.
	term := header.Term()
	if term == nil || len(term.Succs) != 2 || term.Succs[0] != body || l.Contains(term.Succs[1]) {
		return nil
	}
	cmp, ok := term.Operands[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp || cmp.Pred != ir.PredLT || cmp.Parent != header {
		return nil
	}
	plan := &vecPlan{
		header: header, body: body, cmp: cmp,
		exit: term.Succs[1], preheader: l.Preheader,
		addr: map[*ir.Instr]addrClass{},
	}
	invariant := func(v ir.Value) bool {
		in, isIn := v.(*ir.Instr)
		return !isIn || !l.Contains(in.Parent)
	}
	// Header may contain only phis + cmp + br.
	for _, in := range header.Instrs {
		if in.Dead() {
			continue
		}
		switch {
		case in.Op == ir.OpPhi:
		case in == cmp, in == term:
		default:
			return nil
		}
	}
	// Classify phis: one induction + integer add reductions.
	for _, in := range header.Instrs {
		if in.Dead() || in.Op != ir.OpPhi {
			continue
		}
		if len(in.Operands) != 2 {
			return nil
		}
		var init, next ir.Value
		for i, from := range in.Incoming {
			if from == l.Preheader {
				init = in.Operands[i]
			} else if from == body {
				next = in.Operands[i]
			} else {
				return nil
			}
		}
		if init == nil || next == nil {
			return nil
		}
		ni, isIn := next.(*ir.Instr)
		if !isIn || ni.Op != ir.OpAdd || ni.Parent != body {
			return nil
		}
		// Induction: add(phi, 1).
		if in.Ty == ir.I64 && isStepOne(ni, in) && cmp.Operands[0] == ir.Value(in) {
			if plan.indPhi != nil {
				return nil
			}
			plan.indPhi, plan.indInit, plan.indStep = in, init, ni
			continue
		}
		// Integer add reduction: add(phi, x) with the phi used only by
		// the add (and outside the loop).
		if in.Ty == ir.I64 && (ni.Operands[0] == ir.Value(in) || ni.Operands[1] == ir.Value(in)) {
			if phiOnlyUsedBy(fn, l, in, ni) && addOnlyUsedBy(fn, l, ni, in) {
				plan.reductions = append(plan.reductions, &reduction{phi: in, init: init, add: ni})
				continue
			}
		}
		return nil
	}
	if plan.indPhi == nil || !invariant(cmp.Operands[1]) {
		return nil
	}
	plan.bound = cmp.Operands[1]

	// Body: straight-line vectorizable instructions.
	reductionAdds := map[*ir.Instr]bool{}
	for _, r := range plan.reductions {
		reductionAdds[r.add] = true
	}
	var loads, stores []*ir.Instr
	count := 0
	for _, in := range body.Instrs {
		if in.Dead() {
			continue
		}
		count++
		if count > 80 {
			return nil // cost model: body too large
		}
		switch in.Op {
		case ir.OpBr:
			if len(in.Succs) != 1 || in.Succs[0] != header {
				return nil
			}
		case ir.OpGEP:
			ac, ok := classifyAddr(in, plan, invariant)
			if !ok {
				return nil
			}
			plan.addr[in] = ac
		case ir.OpLoad:
			if in.Ty == ir.Ptr || in.Ty.Kind == ir.KVec {
				return nil
			}
			if !addrOK(in.Operands[0], plan, invariant) {
				return nil
			}
			loads = append(loads, in)
		case ir.OpStore:
			vt := in.Operands[0].Type()
			if vt != ir.F64 && vt != ir.I64 {
				return nil
			}
			// Stores must be consecutive (invariant stores carry a
			// loop-carried output dependence).
			ac, ok := lookupAddr(in.Operands[1], plan, invariant)
			if !ok || ac.kind != addrConsecutive {
				return nil
			}
			stores = append(stores, in)
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
			ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
			ir.OpSIToFP, ir.OpFPToSI:
			if reductionAdds[in] || in == plan.indStep {
				continue
			}
		default:
			return nil
		}
	}

	// Legality: every store disjoint from every other access, unless
	// they compute the same address expression (distance-0 dependence).
	q := ctx.Query(fn)
	for _, s := range stores {
		sLoc := aa.LocOfStore(s)
		for _, other := range append(append([]*ir.Instr{}, loads...), stores...) {
			if other == s {
				continue
			}
			var oLoc aa.MemLoc
			if other.Op == ir.OpLoad {
				oLoc = aa.LocOfLoad(other)
			} else {
				oLoc = aa.LocOfStore(other)
			}
			if sameSymbolicAddr(s.Operands[1], other.Operands[len(other.Operands)-1], plan) {
				continue
			}
			if ctx.AA.Alias(sLoc, oLoc, q) != aa.NoAlias {
				return nil
			}
		}
	}
	return plan
}

func isStepOne(add *ir.Instr, phi *ir.Instr) bool {
	if add.Operands[0] == ir.Value(phi) {
		c, ok := constOf(add.Operands[1])
		return ok && c == 1
	}
	if add.Operands[1] == ir.Value(phi) {
		c, ok := constOf(add.Operands[0])
		return ok && c == 1
	}
	return false
}

func phiOnlyUsedBy(fn *ir.Func, l *cfg.Loop, phi, add *ir.Instr) bool {
	for _, b := range fn.Blocks {
		if !l.Contains(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Dead() || in == add {
				continue
			}
			for _, op := range in.Operands {
				if op == ir.Value(phi) {
					return false
				}
			}
		}
	}
	return true
}

func addOnlyUsedBy(fn *ir.Func, l *cfg.Loop, add, phi *ir.Instr) bool {
	for _, b := range fn.Blocks {
		if !l.Contains(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Dead() || in == phi {
				continue
			}
			for _, op := range in.Operands {
				if op == ir.Value(add) {
					return false
				}
			}
		}
	}
	return true
}

func classifyAddr(gep *ir.Instr, plan *vecPlan, invariant func(ir.Value) bool) (addrClass, bool) {
	// Consecutive: gep(base, indPhi, elemSize, off) with invariant base.
	if len(gep.Operands) == 2 && gep.Operands[1] == ir.Value(plan.indPhi) &&
		gep.Scale == 8 && invariant(gep.Operands[0]) {
		return addrClass{kind: addrConsecutive, base: gep.Operands[0], off: gep.Off}, true
	}
	// Invariant address.
	all := true
	for _, op := range gep.Operands {
		if !invariant(op) {
			all = false
			break
		}
	}
	if all {
		return addrClass{kind: addrInvariant, base: gep.Operands[0], off: gep.Off}, true
	}
	return addrClass{}, false
}

func lookupAddr(ptr ir.Value, plan *vecPlan, invariant func(ir.Value) bool) (addrClass, bool) {
	if in, ok := ptr.(*ir.Instr); ok {
		if ac, ok2 := plan.addr[in]; ok2 {
			return ac, true
		}
		if in.Op == ir.OpGEP {
			return classifyAddr(in, plan, invariant)
		}
	}
	if invariant(ptr) {
		return addrClass{kind: addrInvariant, base: ptr}, true
	}
	return addrClass{}, false
}

func addrOK(ptr ir.Value, plan *vecPlan, invariant func(ir.Value) bool) bool {
	_, ok := lookupAddr(ptr, plan, invariant)
	return ok
}

// sameSymbolicAddr reports whether two pointers are the same value or
// the same (base, index, scale, offset) consecutive expression.
func sameSymbolicAddr(a, b ir.Value, plan *vecPlan) bool {
	if a == b {
		return true
	}
	ai, ok1 := a.(*ir.Instr)
	bi, ok2 := b.(*ir.Instr)
	if !ok1 || !ok2 {
		return false
	}
	ca, in1 := plan.addr[ai]
	cb, in2 := plan.addr[bi]
	return in1 && in2 && ca.kind == addrConsecutive && cb.kind == addrConsecutive &&
		ca.base == cb.base && ca.off == cb.off
}
