package passes

import (
	"fmt"

	"github.com/oraql/go-oraql/internal/ir"
)

// isPureOp reports whether the instruction computes a value with no
// side effects and no dependence on memory, so it can be removed when
// unused and hoisted/CSE'd when operands match. Calls to readnone math
// intrinsics count as pure.
func isPureOp(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpAShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpSIToFP, ir.OpFPToSI, ir.OpICmp, ir.OpFCmp,
		ir.OpSelect, ir.OpGEP,
		ir.OpVSplat, ir.OpVExtract, ir.OpVInsert, ir.OpVReduce:
		return true
	case ir.OpCall:
		return pureIntrinsics[in.Callee]
	}
	return false
}

// pureIntrinsics are deterministic, effect-free math functions; every
// other call is treated as having observable effects (I/O, runtime
// state, allocation).
var pureIntrinsics = map[string]bool{
	"__sqrt": true, "__fabs": true, "__exp": true, "__log": true,
	"__sin": true, "__cos": true, "__pow": true,
	"__min_i64": true, "__max_i64": true, "__min_f64": true, "__max_f64": true,
}

// sideEffectFree reports whether deleting the unused instruction is
// safe: pure ops, loads (a dead load has no observable effect), phis
// and allocas.
func sideEffectFree(in *ir.Instr) bool {
	if isPureOp(in) {
		return true
	}
	switch in.Op {
	case ir.OpLoad, ir.OpPhi, ir.OpAlloca:
		return true
	}
	return false
}

// useCounts maps each instruction to the number of operand slots that
// reference it across the function.
func useCounts(fn *ir.Func) map[*ir.Instr]int {
	uses := map[*ir.Instr]int{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dead() {
				continue
			}
			for _, op := range in.Operands {
				if oi, ok := op.(*ir.Instr); ok {
					uses[oi]++
				}
			}
		}
	}
	return uses
}

// exprKey builds a structural hash key of a pure instruction for CSE
// and value numbering: opcode, predicate, gep constants, callee, and
// operand identities (by VID).
func exprKey(in *ir.Instr) string {
	key := fmt.Sprintf("%d|%d|%d|%d|%s", in.Op, in.Pred, in.Scale, in.Off, in.Callee)
	for _, op := range in.Operands {
		key += fmt.Sprintf("|%d", op.VID())
	}
	return key
}

// constOf returns the constant value of v if it is an integer constant.
func constOf(v ir.Value) (int64, bool) {
	c, ok := v.(*ir.Const)
	if !ok || c.Ty == ir.F64 {
		return 0, false
	}
	return c.I, true
}

// fconstOf returns the constant value of v if it is a float constant.
func fconstOf(v ir.Value) (float64, bool) {
	c, ok := v.(*ir.Const)
	if !ok || c.Ty != ir.F64 {
		return 0, false
	}
	return c.F, true
}

// removeDeadCode deletes unused side-effect-free instructions until a
// fixed point, returning how many were removed.
func removeDeadCode(fn *ir.Func) int {
	removed := 0
	for {
		uses := useCounts(fn)
		changed := false
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Dead() || in.IsTerminator() {
					continue
				}
				if uses[in] == 0 && sideEffectFree(in) {
					in.MarkDead()
					removed++
					changed = true
				}
			}
		}
		if !changed {
			return removed
		}
	}
}
