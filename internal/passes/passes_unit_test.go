package passes

import (
	"testing"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/ir"
)

func newCtx(m *ir.Module) *Context {
	return &Context{Module: m, AA: aa.NewManager(m, aa.DefaultChain(m)...), Stats: NewStats()}
}

// countedLoop builds: entry -> header(phi i, cmp i<n) -> body(store
// a[i]; i++) -> header; exit returns.
func countedLoop(t testing.TB, n ir.Value) (*ir.Module, *ir.Func) {
	m := ir.NewModule("t")
	var params []*ir.Arg
	if a, ok := n.(*ir.Arg); ok {
		params = append(params, a)
	}
	fn, b := ir.NewFunc(m, "f", ir.Void, params...)
	entry := b.Block()
	a := b.Alloca(1024, "a")
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	iPhi := b.Phi(ir.I64, "i")
	cmp := b.ICmp(ir.PredLT, iPhi, n, "cmp")
	b.CondBr(cmp, body, exit)
	b.SetBlock(body)
	g := b.GEP(a, iPhi, 8, 0, "g")
	b.Store(iPhi, g, "long")
	i2 := b.Bin(ir.OpAdd, iPhi, ir.ConstInt(1), "i2")
	b.Br(header)
	b.SetBlock(exit)
	ld := b.Load(ir.I64, a, "long")
	b.Call(ir.Void, "__print_i64", ld)
	b.Ret(nil)
	ir.AddIncoming(iPhi, ir.ConstInt(0), entry)
	ir.AddIncoming(iPhi, i2, body)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	return m, fn
}

func TestLoopRotateShape(t *testing.T) {
	narg := &ir.Arg{Name: "n", Ty: ir.I64}
	m, fn := countedLoop(t, narg)
	ctx := newCtx(m)
	if (&LoopRotate{}).Run(fn, ctx).PreservesAll() {
		t.Fatal("loop should rotate")
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("rotated function invalid: %v\n%s", err, fn.String())
	}
	if ctx.Stats.Get("Loop Rotation", "# loops rotated") != 1 {
		t.Error("rotation not counted")
	}
	// The guard now sits in the entry block: its terminator must be
	// conditional.
	if term := fn.Entry().Term(); len(term.Succs) != 2 {
		t.Errorf("entry must end in the guard branch:\n%s", fn.String())
	}
	// Rotating again must be a no-op (bottom-tested form).
	if !(&LoopRotate{}).Run(fn, ctx).PreservesAll() {
		t.Error("second rotation must not fire")
	}
}

func TestLoopRotateSkipsMultiExit(t *testing.T) {
	// A break edge gives the exit two predecessors; rotation must bail.
	m := ir.NewModule("t")
	narg := &ir.Arg{Name: "n", Ty: ir.I64}
	fn, b := ir.NewFunc(m, "f", ir.Void, narg)
	entry := b.Block()
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	iPhi := b.Phi(ir.I64, "i")
	cmp := b.ICmp(ir.PredLT, iPhi, narg, "cmp")
	b.CondBr(cmp, body, exit)
	b.SetBlock(body)
	brk := b.ICmp(ir.PredEQ, iPhi, ir.ConstInt(5), "brk")
	cont := b.NewBlock("cont")
	b.CondBr(brk, exit, cont)
	b.SetBlock(cont)
	i2 := b.Bin(ir.OpAdd, iPhi, ir.ConstInt(1), "i2")
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(nil)
	ir.AddIncoming(iPhi, ir.ConstInt(0), entry)
	ir.AddIncoming(iPhi, i2, cont)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	if !(&LoopRotate{}).Run(fn, newCtx(m)).PreservesAll() {
		t.Error("multi-predecessor exit must not rotate")
	}
}

func TestLoopVectorizeAnalyzeRejects(t *testing.T) {
	// A loop with a call in the body must not vectorize.
	m := ir.NewModule("t")
	narg := &ir.Arg{Name: "n", Ty: ir.I64}
	fn, b := ir.NewFunc(m, "f", ir.Void, narg)
	entry := b.Block()
	a := b.Alloca(1024, "a")
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.Br(header)
	b.SetBlock(header)
	iPhi := b.Phi(ir.I64, "i")
	cmp := b.ICmp(ir.PredLT, iPhi, narg, "cmp")
	b.CondBr(cmp, body, exit)
	b.SetBlock(body)
	g := b.GEP(a, iPhi, 8, 0, "g")
	v := b.Call(ir.F64, "__sqrt", ir.ConstFloat(2))
	b.Store(v, g, "double")
	i2 := b.Bin(ir.OpAdd, iPhi, ir.ConstInt(1), "i2")
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(nil)
	ir.AddIncoming(iPhi, ir.ConstInt(0), entry)
	ir.AddIncoming(iPhi, i2, body)
	ctx := newCtx(m)
	(&LoopVectorize{}).Run(fn, ctx)
	if ctx.Stats.Get("Loop Vectorizer", "# vectorized loops") != 0 {
		t.Error("loops with calls must not vectorize")
	}
}

func TestVectorizeCountedLoop(t *testing.T) {
	narg := &ir.Arg{Name: "n", Ty: ir.I64}
	m, fn := countedLoop(t, narg)
	ctx := newCtx(m)
	if (&LoopVectorize{}).Run(fn, ctx).PreservesAll() {
		t.Fatalf("loop should vectorize:\n%s", fn.String())
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("vectorized function invalid: %v\n%s", err, fn.String())
	}
	if ctx.Stats.Get("Loop Vectorizer", "# vectorized loops") != 1 {
		t.Error("vectorization not counted")
	}
}

func TestDSESameBlockRules(t *testing.T) {
	m := ir.NewModule("t")
	fn, b := ir.NewFunc(m, "f", ir.Void)
	a := b.Alloca(16, "a")
	s1 := b.Store(ir.ConstInt(1), a, "")
	b.Store(ir.ConstInt(2), a, "")
	ld := b.Load(ir.I64, a, "")
	b.Call(ir.Void, "__print_i64", ld)
	b.Ret(nil)
	ctx := newCtx(m)
	(&DSE{}).Run(fn, ctx)
	if !s1.Dead() {
		t.Error("overwritten store must die")
	}
	if ctx.Stats.Get("Dead Store Elimination", "# stores deleted") != 1 {
		t.Error("stat missing")
	}
}

func TestDSEDeadObjectStores(t *testing.T) {
	m := ir.NewModule("t")
	fn, b := ir.NewFunc(m, "f", ir.Void)
	dead := b.Alloca(16, "dead")
	live := b.Alloca(16, "live")
	sDead := b.Store(ir.ConstInt(1), dead, "")
	sLive := b.Store(ir.ConstInt(2), live, "")
	ld := b.Load(ir.I64, live, "")
	b.Call(ir.Void, "__print_i64", ld)
	b.Ret(nil)
	(&DSE{}).Run(fn, newCtx(m))
	if !sDead.Dead() {
		t.Error("store to a never-read object must die")
	}
	if sLive.Dead() {
		t.Error("store to a read object must survive")
	}
}

func TestSimplifyCFGUnreachable(t *testing.T) {
	m := ir.NewModule("t")
	fn, b := ir.NewFunc(m, "f", ir.Void)
	b.Ret(nil)
	deadB := fn.NewBlock("dead")
	db := ir.NewBuilder(deadB)
	db.Ret(nil)
	(&SimplifyCFG{}).Run(fn, newCtx(m))
	if len(fn.Blocks) != 1 {
		t.Errorf("unreachable block must be removed, have %d blocks", len(fn.Blocks))
	}
}

func TestEarlyCSEInvalidation(t *testing.T) {
	m := ir.NewModule("t")
	p := &ir.Arg{Name: "p", Ty: ir.Ptr}
	q := &ir.Arg{Name: "q", Ty: ir.Ptr}
	fn, b := ir.NewFunc(m, "f", ir.F64, p, q)
	l1 := b.Load(ir.F64, p, "double")
	b.Store(ir.ConstFloat(1), q, "double") // may clobber *p
	l2 := b.Load(ir.F64, p, "double")
	sum := b.Bin(ir.OpFAdd, l1, l2, "sum")
	b.Ret(sum)
	(&EarlyCSE{}).Run(fn, newCtx(m))
	if l2.Dead() {
		t.Error("a may-aliasing store must invalidate the available load")
	}
	// With restrict params the forwarding is legal.
	m2 := ir.NewModule("t2")
	p2 := &ir.Arg{Name: "p", Ty: ir.Ptr, NoAlias: true}
	q2 := &ir.Arg{Name: "q", Ty: ir.Ptr, NoAlias: true}
	fn2, b2 := ir.NewFunc(m2, "f", ir.F64, p2, q2)
	l1b := b2.Load(ir.F64, p2, "double")
	b2.Store(ir.ConstFloat(1), q2, "double")
	l2b := b2.Load(ir.F64, p2, "double")
	sum2 := b2.Bin(ir.OpFAdd, l1b, l2b, "sum")
	b2.Ret(sum2)
	(&EarlyCSE{}).Run(fn2, newCtx(m2))
	if !l2b.Dead() {
		t.Error("restrict-separated store must not invalidate the load")
	}
	_ = l1b
	_ = l1
}

func TestStatsRegistryOrderingAndPrint(t *testing.T) {
	s := NewStats()
	s.Add("zeta", "# b", 2)
	s.Add("alpha", "# a", 1)
	s.Add("zeta", "# b", 3)
	es := s.Entries()
	if len(es) != 2 || es[0].Pass != "alpha" || es[1].Value != 5 {
		t.Errorf("entries: %+v", es)
	}
	if s.Get("zeta", "# b") != 5 || s.Get("nope", "x") != 0 {
		t.Error("Get")
	}
}

func TestPipelineQueryAttribution(t *testing.T) {
	m := ir.NewModule("t")
	p := &ir.Arg{Name: "p", Ty: ir.Ptr}
	q := &ir.Arg{Name: "q", Ty: ir.Ptr}
	_, b := ir.NewFunc(m, "f", ir.Void, p, q)
	l := b.Load(ir.F64, p, "double")
	b.Store(l, q, "double")
	b.Store(ir.ConstFloat(2), q, "double")
	ld := b.Load(ir.F64, p, "double")
	b.Store(ld, q, "double")
	b.Ret(nil)
	mgr := aa.NewManager(m, aa.DefaultChain(m)...)
	ctx := &Context{Module: m, AA: mgr, Stats: NewStats()}
	O3Pipeline().Run(ctx)
	if len(mgr.Stats().QueriesByPass) == 0 {
		t.Error("queries must carry pass attribution")
	}
}
