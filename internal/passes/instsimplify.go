package passes

import (
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/ir"
)

// InstSimplify folds constants and applies algebraic identities. It
// issues no alias queries; its job is to canonicalize the IR so the
// AA-driven passes see clean expressions.
type InstSimplify struct{}

// Name implements Pass.
func (*InstSimplify) Name() string { return "instsimplify" }

// Run implements Pass.
func (p *InstSimplify) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	changed := false
	for {
		round := false
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Dead() {
					continue
				}
				if canonGEP(in) {
					round = true
					continue
				}
				if v := simplify(in); v != nil {
					fn.ReplaceAllUses(in, v)
					in.MarkDead()
					round = true
					ctx.Stats.Add(p.Name(), "Number of instructions simplified", 1)
				}
			}
		}
		if !round {
			break
		}
		changed = true
	}
	if removeDeadCode(fn) > 0 {
		changed = true
	}
	if !changed {
		return analysis.All()
	}
	// Rewrites values (in particular GEP offsets) but never block edges.
	return analysis.CFGOnly()
}

// canonGEP folds constant addends of a GEP index into the byte offset:
// gep(base, add(x, c), s, o) becomes gep(base, x, s, o+c*s). The
// canonical form lets BasicAA separate a[i] from a[i+1] and lets the
// loop vectorizer recognize stencil accesses as consecutive.
func canonGEP(in *ir.Instr) bool {
	if in.Op != ir.OpGEP || len(in.Operands) != 2 {
		return false
	}
	idx, ok := in.Operands[1].(*ir.Instr)
	if !ok || (idx.Op != ir.OpAdd && idx.Op != ir.OpSub) {
		return false
	}
	if c, isC := constOf(idx.Operands[1]); isC {
		if idx.Op == ir.OpAdd {
			in.Off += c * in.Scale
		} else {
			in.Off -= c * in.Scale
		}
		in.Operands[1] = idx.Operands[0]
		return true
	}
	if c, isC := constOf(idx.Operands[0]); isC && idx.Op == ir.OpAdd {
		in.Off += c * in.Scale
		in.Operands[1] = idx.Operands[1]
		return true
	}
	return false
}

// simplify returns a replacement value for in, or nil.
func simplify(in *ir.Instr) ir.Value {
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpAShr:
		return simplifyIntBin(in)
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		return simplifyFloatBin(in)
	case ir.OpICmp:
		return simplifyICmp(in)
	case ir.OpSelect:
		if c, ok := constOf(in.Operands[0]); ok {
			if c != 0 {
				return in.Operands[1]
			}
			return in.Operands[2]
		}
		if in.Operands[1] == in.Operands[2] {
			return in.Operands[1]
		}
	case ir.OpSIToFP:
		if c, ok := constOf(in.Operands[0]); ok {
			return ir.ConstFloat(float64(c))
		}
	case ir.OpFPToSI:
		if c, ok := fconstOf(in.Operands[0]); ok {
			return ir.ConstInt(int64(c))
		}
	case ir.OpGEP:
		// gep base + 0 with no index folds to base.
		if len(in.Operands) == 1 && in.Off == 0 {
			return in.Operands[0]
		}
		if len(in.Operands) == 2 {
			if c, ok := constOf(in.Operands[1]); ok && c == 0 && in.Off == 0 {
				return in.Operands[0]
			}
		}
	case ir.OpPhi:
		// A phi whose incoming values all agree folds to that value.
		if len(in.Operands) > 0 {
			first := in.Operands[0]
			same := true
			for _, v := range in.Operands[1:] {
				if v != first && v != ir.Value(in) {
					same = false
					break
				}
			}
			if same && first != ir.Value(in) {
				return first
			}
		}
	}
	return nil
}

func simplifyIntBin(in *ir.Instr) ir.Value {
	x, y := in.Operands[0], in.Operands[1]
	cx, okx := constOf(x)
	cy, oky := constOf(y)
	if okx && oky {
		if v, ok := foldIntBin(in.Op, cx, cy); ok {
			return ir.ConstInt(v)
		}
		return nil
	}
	switch in.Op {
	case ir.OpAdd:
		if okx && cx == 0 {
			return y
		}
		if oky && cy == 0 {
			return x
		}
	case ir.OpSub:
		if oky && cy == 0 {
			return x
		}
		if x == y {
			return ir.ConstInt(0)
		}
	case ir.OpMul:
		if okx && cx == 1 {
			return y
		}
		if oky && cy == 1 {
			return x
		}
		if okx && cx == 0 || oky && cy == 0 {
			return ir.ConstInt(0)
		}
	case ir.OpSDiv:
		if oky && cy == 1 {
			return x
		}
	case ir.OpAnd:
		if okx && cx == 0 || oky && cy == 0 {
			return ir.ConstInt(0)
		}
	case ir.OpOr, ir.OpXor:
		if okx && cx == 0 {
			return y
		}
		if oky && cy == 0 {
			return x
		}
	case ir.OpShl, ir.OpAShr:
		if oky && cy == 0 {
			return x
		}
	}
	return nil
}

func foldIntBin(op ir.Opcode, x, y int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return x + y, true
	case ir.OpSub:
		return x - y, true
	case ir.OpMul:
		return x * y, true
	case ir.OpSDiv:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case ir.OpSRem:
		if y == 0 {
			return 0, false
		}
		return x % y, true
	case ir.OpAnd:
		return x & y, true
	case ir.OpOr:
		return x | y, true
	case ir.OpXor:
		return x ^ y, true
	case ir.OpShl:
		if uint64(y) > 63 {
			return 0, false
		}
		return x << uint(y), true
	case ir.OpAShr:
		if uint64(y) > 63 {
			return 0, false
		}
		return x >> uint(y), true
	}
	return 0, false
}

func simplifyFloatBin(in *ir.Instr) ir.Value {
	if in.Ty.Kind == ir.KVec {
		return nil
	}
	cx, okx := fconstOf(in.Operands[0])
	cy, oky := fconstOf(in.Operands[1])
	if okx && oky {
		switch in.Op {
		case ir.OpFAdd:
			return ir.ConstFloat(cx + cy)
		case ir.OpFSub:
			return ir.ConstFloat(cx - cy)
		case ir.OpFMul:
			return ir.ConstFloat(cx * cy)
		case ir.OpFDiv:
			return ir.ConstFloat(cx / cy)
		}
	}
	// No fast-math identities: x+0.0 is not folded (signed zeros),
	// matching default LLVM semantics.
	return nil
}

func simplifyICmp(in *ir.Instr) ir.Value {
	x, y := in.Operands[0], in.Operands[1]
	if cx, okx := constOf(x); okx {
		if cy, oky := constOf(y); oky {
			var r bool
			switch in.Pred {
			case ir.PredEQ:
				r = cx == cy
			case ir.PredNE:
				r = cx != cy
			case ir.PredLT:
				r = cx < cy
			case ir.PredLE:
				r = cx <= cy
			case ir.PredGT:
				r = cx > cy
			case ir.PredGE:
				r = cx >= cy
			}
			return ir.ConstBool(r)
		}
	}
	if x == y {
		switch in.Pred {
		case ir.PredEQ, ir.PredLE, ir.PredGE:
			return ir.ConstBool(true)
		case ir.PredNE, ir.PredLT, ir.PredGT:
			return ir.ConstBool(false)
		}
	}
	return nil
}
