// Package passes implements the optimization pipeline: a pass manager
// with LLVM-style statistics (-stats) and pass-execution tracing
// (-debug-pass=Executions), and the AA-consuming transformation passes
// whose statistics the paper reports in Fig. 6 — EarlyCSE, GVN,
// MemCpyOpt, DSE, LICM, loop load elimination, loop deletion, the loop
// and SLP vectorizers, and sinking — plus the AA-free cleanups
// (InstSimplify, SimplifyCFG, ADCE) that keep the IR canonical.
package passes

import (
	"fmt"
	"io"
	"sort"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/ir"
)

// StatsRegistry accumulates named counters per pass, mirroring LLVM's
// STATISTIC mechanism surfaced through -mllvm -stats.
type StatsRegistry struct {
	counters map[statKey]int64
	order    []statKey
}

type statKey struct{ Pass, Stat string }

// NewStats returns an empty registry.
func NewStats() *StatsRegistry {
	return &StatsRegistry{counters: map[statKey]int64{}}
}

// Add increments a counter.
func (s *StatsRegistry) Add(pass, stat string, n int64) {
	k := statKey{pass, stat}
	if _, ok := s.counters[k]; !ok {
		s.order = append(s.order, k)
	}
	s.counters[k] += n
}

// Get returns a counter value (0 if never incremented).
func (s *StatsRegistry) Get(pass, stat string) int64 {
	return s.counters[statKey{pass, stat}]
}

// Entry is one (pass, statistic, value) line of the -stats report.
type Entry struct {
	Pass  string
	Stat  string
	Value int64
}

// Entries returns all counters sorted by pass then statistic name.
func (s *StatsRegistry) Entries() []Entry {
	keys := append([]statKey(nil), s.order...)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pass != keys[j].Pass {
			return keys[i].Pass < keys[j].Pass
		}
		return keys[i].Stat < keys[j].Stat
	})
	out := make([]Entry, len(keys))
	for i, k := range keys {
		out[i] = Entry{k.Pass, k.Stat, s.counters[k]}
	}
	return out
}

// Print renders the registry in the style of LLVM's -stats output.
func (s *StatsRegistry) Print(w io.Writer) {
	fmt.Fprintln(w, "===-------------------------------------------------------------------------===")
	fmt.Fprintln(w, "                          ... Statistics Collected ...")
	fmt.Fprintln(w, "===-------------------------------------------------------------------------===")
	for _, e := range s.Entries() {
		fmt.Fprintf(w, "%8d %s - %s\n", e.Value, e.Pass, e.Stat)
	}
}

// Context carries everything a pass needs: the module, the AA manager
// (with ORAQL possibly at the end of its chain), the statistics
// registry, and debug options.
type Context struct {
	Module *ir.Module
	AA     *aa.Manager
	Stats  *StatsRegistry

	// DebugPassExec prints "Executing Pass '<name>' on Function '<fn>'"
	// lines to Out, the analogue of -debug-pass=Executions that the
	// paper uses to attribute queries to passes (Fig. 3).
	DebugPassExec bool
	Out           io.Writer

	// curPass is the pass currently executing; queries carry it.
	curPass string
}

// Query returns the AA query context for the currently running pass.
func (c *Context) Query(fn *ir.Func) *aa.QueryCtx {
	return &aa.QueryCtx{Pass: c.curPass, Func: fn}
}

// QueryAs returns an AA query context attributed to a named analysis
// (e.g. "Memory SSA") rather than the running transformation pass.
func (c *Context) QueryAs(name string, fn *ir.Func) *aa.QueryCtx {
	return &aa.QueryCtx{Pass: name, Func: fn}
}

// Pass is a function transformation pass.
type Pass interface {
	// Name is the human-readable pass name used in statistics and
	// query attribution (matching the paper's pass names).
	Name() string
	// Run transforms fn, returning whether anything changed.
	Run(fn *ir.Func, ctx *Context) bool
}

// Pipeline is an ordered list of passes run over every function.
type Pipeline struct {
	Passes []Pass
}

// O3Pipeline mirrors the structure of the default -O3 pipeline: local
// cleanups, then the AA-driven scalar optimizations, then loop
// optimizations and vectorization, then final cleanups. Two rounds of
// the scalar passes approximate LLVM's iteration.
func O3Pipeline() *Pipeline {
	return &Pipeline{Passes: []Pass{
		&InstSimplify{},
		&SimplifyCFG{},
		&EarlyCSE{},
		&GVN{},
		&MemCpyOpt{},
		&DSE{},
		&LICM{},
		&LoopLoadElim{},
		// Vectorization runs on the canonical top-tested form...
		&LoopVectorize{},
		&SLPVectorize{},
		// ...then rotation exposes guaranteed-to-execute bodies to the
		// second, stronger scalar round (LLVM's loop-rotate-before-LICM
		// ordering).
		&LoopRotate{},
		&LICM{},
		&GVN{},
		&DSE{},
		&LoopDeletion{},
		&SimplifyCFG{},
		&EarlyCSE{},
		&Sink{},
		&ADCE{},
		&SimplifyCFG{},
	}}
}

// O1Pipeline is a reduced pipeline without vectorization or loop
// deletion, used by the pipeline-comparison experiments.
func O1Pipeline() *Pipeline {
	return &Pipeline{Passes: []Pass{
		&InstSimplify{},
		&SimplifyCFG{},
		&EarlyCSE{},
		&GVN{},
		&DSE{},
		&LICM{},
		&ADCE{},
		&SimplifyCFG{},
	}}
}

// Run executes the pipeline over every function in ctx.Module.
func (p *Pipeline) Run(ctx *Context) {
	for _, pass := range p.Passes {
		for _, fn := range ctx.Module.Funcs {
			if len(fn.Blocks) == 0 {
				continue
			}
			ctx.curPass = pass.Name()
			if ctx.DebugPassExec && ctx.Out != nil {
				fmt.Fprintf(ctx.Out, "Executing Pass '%s' on Function '%s'...\n", pass.Name(), fn.Name)
			}
			changed := pass.Run(fn, ctx)
			fn.Compact()
			// A pass that mutated the function invalidates the memoized
			// alias-query verdicts before the next pass queries them
			// (the AAQueryInfo lifetime boundary).
			if changed && ctx.AA != nil {
				ctx.AA.Invalidate()
			}
		}
	}
	ctx.curPass = ""
}
