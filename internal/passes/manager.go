// Package passes implements the optimization pipeline: a pass manager
// with LLVM-style statistics (-stats), pass-execution tracing
// (-debug-pass=Executions) and timing (-time-passes), and the
// AA-consuming transformation passes whose statistics the paper
// reports in Fig. 6 — EarlyCSE, GVN, MemCpyOpt, DSE, LICM, loop load
// elimination, loop deletion, the loop and SLP vectorizers, and
// sinking — plus the AA-free cleanups (InstSimplify, SimplifyCFG,
// ADCE) that keep the IR canonical.
//
// Passes obtain CFG info and the MemorySSA walker through the
// per-function analysis manager (Context.CFG / Context.MemSSA) and
// report what they preserved by returning an
// analysis.PreservedAnalyses set, the new-pass-manager protocol.
package passes

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/cfg"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/mssa"
)

// StatsRegistry accumulates named counters per pass, mirroring LLVM's
// STATISTIC mechanism surfaced through -mllvm -stats. Only
// deterministic counters belong here — the transparency tests compare
// registries across cached and uncached compilations bit-for-bit;
// wall times go to Timing instead.
type StatsRegistry struct {
	counters map[statKey]int64
	order    []statKey
}

type statKey struct{ Pass, Stat string }

// NewStats returns an empty registry.
func NewStats() *StatsRegistry {
	return &StatsRegistry{counters: map[statKey]int64{}}
}

// Add increments a counter.
func (s *StatsRegistry) Add(pass, stat string, n int64) {
	k := statKey{pass, stat}
	if _, ok := s.counters[k]; !ok {
		s.order = append(s.order, k)
	}
	s.counters[k] += n
}

// Get returns a counter value (0 if never incremented).
func (s *StatsRegistry) Get(pass, stat string) int64 {
	return s.counters[statKey{pass, stat}]
}

// Merge adds other's counters into s, preserving other's insertion
// order for keys s has not seen. The parallel pass manager books each
// function's counters into a private registry and merges them at the
// pass barrier in module function order, which reproduces the exact
// key order (and therefore byte-identical -stats output) of the
// sequential pipeline.
func (s *StatsRegistry) Merge(other *StatsRegistry) {
	if other == nil {
		return
	}
	for _, k := range other.order {
		if _, ok := s.counters[k]; !ok {
			s.order = append(s.order, k)
		}
		s.counters[k] += other.counters[k]
	}
}

// Entry is one (pass, statistic, value) line of the -stats report.
type Entry struct {
	Pass  string
	Stat  string
	Value int64
}

// Ordered returns all counters in insertion order — the order Merge
// reproduces, which the disk cache persists so replayed counters enter
// a warm registry exactly as the cold pipeline inserted them.
func (s *StatsRegistry) Ordered() []Entry {
	out := make([]Entry, len(s.order))
	for i, k := range s.order {
		out[i] = Entry{k.Pass, k.Stat, s.counters[k]}
	}
	return out
}

// Entries returns all counters sorted by pass then statistic name.
func (s *StatsRegistry) Entries() []Entry {
	keys := append([]statKey(nil), s.order...)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pass != keys[j].Pass {
			return keys[i].Pass < keys[j].Pass
		}
		return keys[i].Stat < keys[j].Stat
	})
	out := make([]Entry, len(keys))
	for i, k := range keys {
		out[i] = Entry{k.Pass, k.Stat, s.counters[k]}
	}
	return out
}

// Print renders the registry in the style of LLVM's -stats output.
func (s *StatsRegistry) Print(w io.Writer) {
	fmt.Fprintln(w, "===-------------------------------------------------------------------------===")
	fmt.Fprintln(w, "                          ... Statistics Collected ...")
	fmt.Fprintln(w, "===-------------------------------------------------------------------------===")
	for _, e := range s.Entries() {
		fmt.Fprintf(w, "%8d %s - %s\n", e.Value, e.Pass, e.Stat)
	}
}

// Context carries everything a pass needs: the module, the AA manager
// (with ORAQL possibly at the end of its chain), the statistics
// registry, the per-function analysis manager, and debug options.
type Context struct {
	Module *ir.Module
	AA     *aa.Manager
	Stats  *StatsRegistry

	// Ctx, when non-nil, cancels the pipeline between pass executions:
	// Pipeline.Run stops scheduling passes once it is done. Callers that
	// need the cancellation surfaced as an error check Ctx.Err() after
	// Run returns (pipeline.CompileContext does).
	Ctx context.Context

	// Timing, when non-nil, accumulates per-pass run counts and wall
	// times — the -time-passes report. It is deliberately separate from
	// Stats: wall time is nondeterministic.
	Timing *Timing

	// DisableAnalysisCache runs the analysis manager in force-invalidate
	// mode: every Get recomputes and any change invalidates everything,
	// never trusting declared preservation sets. This is the reference
	// behaviour the transparency tests compare the cache against.
	DisableAnalysisCache bool

	// DebugPassExec prints "Executing Pass '<name>' on Function '<fn>'"
	// lines to Out, the analogue of -debug-pass=Executions that the
	// paper uses to attribute queries to passes (Fig. 3).
	DebugPassExec bool
	Out           io.Writer

	// Disk, when non-nil, is the per-function disk-cache plan: hit
	// functions carry cached optimized bodies (already swapped in by
	// DiskPlan.Apply) and have their pass accounting replayed instead
	// of executed; miss functions run normally with their accounting
	// captured for persisting. See diskplan.go.
	Disk *DiskPlan

	// Workers bounds the per-function parallelism of Pipeline.Run:
	// each function pass fans out over Module.Funcs on a pool of this
	// many workers, with a barrier between passes (0 = GOMAXPROCS,
	// 1 = the strictly sequential pipeline). Compilation output is
	// byte-identical for every value; Run falls back to sequential
	// execution when the AA manager is order-dependent (ORAQL or a
	// Blocker installed) or when DebugPassExec traces executions.
	Workers int

	// curPass is the pass currently executing; queries carry it.
	curPass string

	// am is the lazily built analysis manager; use Analyses().
	am *analysis.Manager
}

// Analyses returns the context's analysis manager, building and
// populating it with the default registrations on first use: CFG info,
// the MemorySSA walker (valid exactly as long as the CFG is), and the
// alias-query-cache marker whose invalidation hook scopes AA cache
// flushes to the changed function.
func (c *Context) Analyses() *analysis.Manager {
	if c.am == nil {
		m := analysis.NewManager()
		m.Register(analysis.Registration{
			Key:   analysis.CFGKey,
			Build: func(_ *analysis.Manager, fn *ir.Func) any { return cfg.New(fn) },
		})
		m.Register(analysis.Registration{
			Key: analysis.MemSSAKey,
			Build: func(m *analysis.Manager, fn *ir.Func) any {
				info := m.Get(analysis.CFGKey, fn).(*cfg.Info)
				return mssa.New(fn, info, c.AA)
			},
			// The walker holds no state beyond its CFG view, so it stays
			// valid whenever the CFG does.
			PreservedWith: []analysis.Key{analysis.CFGKey},
		})
		m.Register(analysis.Registration{
			Key: analysis.AAQueryCacheKey,
			OnInvalidate: func(fn *ir.Func) {
				if c.AA != nil {
					c.AA.InvalidateFunc(fn)
				}
			},
		})
		m.SetCaching(!c.DisableAnalysisCache)
		c.am = m
	}
	return c.am
}

// CFG returns fn's control-flow analyses (cached until a pass fails to
// preserve them).
func (c *Context) CFG(fn *ir.Func) *cfg.Info {
	return c.Analyses().Get(analysis.CFGKey, fn).(*cfg.Info)
}

// MemSSA returns fn's MemorySSA clobber walker (cached with the CFG).
func (c *Context) MemSSA(fn *ir.Func) *mssa.Walker {
	return c.Analyses().Get(analysis.MemSSAKey, fn).(*mssa.Walker)
}

// InvalidateAll drops every cached analysis for fn. Passes that
// restructure the CFG mid-run (loop rotation, vectorization) call this
// between iterations before re-fetching CFG info.
func (c *Context) InvalidateAll(fn *ir.Func) {
	c.Analyses().Invalidate(fn, analysis.None())
}

// Query returns the AA query context for the currently running pass.
func (c *Context) Query(fn *ir.Func) *aa.QueryCtx {
	return &aa.QueryCtx{Pass: c.curPass, Func: fn}
}

// QueryAs returns an AA query context attributed to a named analysis
// (e.g. "Memory SSA") rather than the running transformation pass.
func (c *Context) QueryAs(name string, fn *ir.Func) *aa.QueryCtx {
	return &aa.QueryCtx{Pass: name, Func: fn}
}

// Pass is a function transformation pass.
type Pass interface {
	// Name is the human-readable pass name used in statistics and
	// query attribution (matching the paper's pass names).
	Name() string
	// Run transforms fn and declares which analyses it preserved:
	// All() when nothing changed, CFGOnly() when instructions changed
	// but block structure did not, None() after CFG surgery.
	Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses
}

// Pipeline is an ordered list of passes run over every function.
type Pipeline struct {
	Passes []Pass
}

// O3Pipeline mirrors the structure of the default -O3 pipeline: local
// cleanups, then the AA-driven scalar optimizations, then loop
// optimizations and vectorization, then final cleanups. Two rounds of
// the scalar passes approximate LLVM's iteration.
func O3Pipeline() *Pipeline {
	return &Pipeline{Passes: []Pass{
		&InstSimplify{},
		&SimplifyCFG{},
		&EarlyCSE{},
		&GVN{},
		&MemCpyOpt{},
		&DSE{},
		&LICM{},
		&LoopLoadElim{},
		// Vectorization runs on the canonical top-tested form...
		&LoopVectorize{},
		&SLPVectorize{},
		// ...then rotation exposes guaranteed-to-execute bodies to the
		// second, stronger scalar round (LLVM's loop-rotate-before-LICM
		// ordering).
		&LoopRotate{},
		&LICM{},
		&GVN{},
		&DSE{},
		&LoopDeletion{},
		&SimplifyCFG{},
		&EarlyCSE{},
		&Sink{},
		&ADCE{},
		&SimplifyCFG{},
	}}
}

// O1Pipeline is a reduced pipeline without vectorization or loop
// deletion, used by the pipeline-comparison experiments.
func O1Pipeline() *Pipeline {
	return &Pipeline{Passes: []Pass{
		&InstSimplify{},
		&SimplifyCFG{},
		&EarlyCSE{},
		&GVN{},
		&DSE{},
		&LICM{},
		&ADCE{},
		&SimplifyCFG{},
	}}
}

// Run executes the pipeline over every function in ctx.Module. After
// each pass run it applies the pass's preservation set to the analysis
// manager — the invalidation boundary that used to be a module-wide
// AA cache flush and is now scoped to the function that changed.
//
// With an effective worker count above one, each function pass fans
// out over the module's functions on a bounded worker pool; passes
// remain sequential barriers (pass i+1 starts only after pass i
// finished on every function). Per-function statistics and timing are
// accumulated privately and merged at the barrier in module function
// order, so -stats and -time-passes output cannot depend on worker
// scheduling.
func (p *Pipeline) Run(ctx *Context) {
	if w := ctx.effectiveWorkers(); w > 1 {
		p.runParallel(ctx, w)
		return
	}
	p.runSequential(ctx)
}

// effectiveWorkers resolves Context.Workers against the configurations
// that require sequential execution: an order-dependent AA manager
// (the ORAQL responder consumes its response sequence in global query
// order) and -debug-pass tracing (the execution log is defined in
// sequential order).
func (c *Context) effectiveWorkers() int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 {
		return 1
	}
	if c.DebugPassExec {
		return 1
	}
	if c.AA != nil && c.AA.OrderDependent() {
		return 1
	}
	return w
}

// runSequential is the worker-count-one pipeline, byte-for-byte the
// pre-parallel behaviour.
func (p *Pipeline) runSequential(ctx *Context) {
	am := ctx.Analyses()
	dp := ctx.Disk
	for pi, pass := range p.Passes {
		for fi, fn := range ctx.Module.Funcs {
			if ctx.Ctx != nil && ctx.Ctx.Err() != nil {
				ctx.curPass = ""
				return
			}
			if dp != nil && dp.isHit(fi) {
				// Body already swapped in from disk: replay this visit's
				// accounting instead of executing the pass.
				dp.replayRun(ctx, pi, fi, pass.Name())
				continue
			}
			if len(fn.Blocks) == 0 {
				continue
			}
			ctx.curPass = pass.Name()
			if ctx.DebugPassExec && ctx.Out != nil {
				fmt.Fprintf(ctx.Out, "Executing Pass '%s' on Function '%s'...\n", pass.Name(), fn.Name)
			}
			capture := dp != nil && dp.capturing(fi)
			shared := ctx.Stats
			if capture {
				// Book this run privately so the captured artifact holds
				// exactly this (pass, function) delta; merging back into
				// the shared registry preserves key insertion order.
				ctx.Stats = NewStats()
			}
			start := time.Now()
			pa := pass.Run(fn, ctx)
			elapsed := time.Since(start)
			fn.Compact()
			am.Invalidate(fn, pa)
			if capture {
				local := ctx.Stats
				ctx.Stats = shared
				shared.Merge(local)
				dp.recordRun(fi, pi, local, !pa.PreservesAll())
			}
			if ctx.Timing != nil {
				ctx.Timing.Record(pass.Name(), elapsed, !pa.PreservesAll())
			}
		}
	}
	ctx.curPass = ""
}

// fnRun is one function's accounting of one pass execution, collected
// by a worker and merged at the pass barrier.
type fnRun struct {
	stats   *StatsRegistry
	wall    time.Duration
	changed bool
	done    bool
}

// runParallel schedules each pass over the module's functions on
// workers goroutines. Functions are the unit of parallelism: one
// worker owns a function for the duration of a pass execution, and
// the pass barrier (WaitGroup) establishes happens-before between
// owners across passes, so per-function IR mutation needs no locks.
// The AA manager and analysis manager are sharded per function and
// safe for this access pattern.
func (p *Pipeline) runParallel(ctx *Context, workers int) {
	am := ctx.Analyses()
	funcs := ctx.Module.Funcs
	if workers > len(funcs) {
		workers = len(funcs)
	}
	if workers <= 1 {
		p.runSequential(ctx)
		return
	}
	dp := ctx.Disk
	runs := make([]fnRun, len(funcs))
	for pi, pass := range p.Passes {
		if ctx.Ctx != nil && ctx.Ctx.Err() != nil {
			return
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Each worker gets its own Context view: curPass for
				// query attribution and a per-function Stats registry,
				// sharing the module, AA manager, and analysis manager.
				wctx := *ctx
				wctx.curPass = pass.Name()
				wctx.Timing = nil
				for {
					i := int(next.Add(1)) - 1
					if i >= len(funcs) {
						return
					}
					if ctx.Ctx != nil && ctx.Ctx.Err() != nil {
						return
					}
					fn := funcs[i]
					runs[i] = fnRun{}
					if dp != nil && dp.isHit(i) {
						continue // replayed at the barrier, in function order
					}
					if len(fn.Blocks) == 0 {
						continue
					}
					local := NewStats()
					wctx.Stats = local
					start := time.Now()
					pa := pass.Run(fn, &wctx)
					elapsed := time.Since(start)
					fn.Compact()
					am.Invalidate(fn, pa)
					runs[i] = fnRun{stats: local, wall: elapsed,
						changed: !pa.PreservesAll(), done: true}
				}
			}()
		}
		wg.Wait()
		// Barrier merge in module function order: counter keys enter
		// the shared registry exactly as the sequential pipeline would
		// have inserted them, and timing rows accumulate per pass in
		// pipeline order.
		for i := range runs {
			if dp != nil && dp.isHit(i) {
				dp.replayRun(ctx, pi, i, pass.Name())
				continue
			}
			r := &runs[i]
			if !r.done {
				continue
			}
			ctx.Stats.Merge(r.stats)
			if ctx.Timing != nil {
				ctx.Timing.Record(pass.Name(), r.wall, r.changed)
			}
			if dp != nil && dp.capturing(i) {
				dp.recordRun(i, pi, r.stats, r.changed)
			}
		}
	}
}
