package passes

import (
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/oraql/go-oraql/internal/analysis"
)

// PassTime is one pass's execution accounting: how often it ran (one
// run per function per pipeline position), how many runs changed the
// IR, and the accumulated wall time — the LLVM -time-passes analogue.
type PassTime struct {
	Pass    string
	Runs    int64
	Changed int64
	Wall    time.Duration
}

// Timing accumulates per-pass execution times over one compilation.
// Runs and Changed are deterministic (a pure function of the input
// program and pipeline); Wall is not, which is why timing lives beside
// the StatsRegistry instead of inside it — the differential tests
// compare registries bit-for-bit.
type Timing struct {
	order  []string
	byPass map[string]*PassTime
}

// NewTiming returns an empty timing registry.
func NewTiming() *Timing {
	return &Timing{byPass: map[string]*PassTime{}}
}

// Record books one pass execution.
func (t *Timing) Record(pass string, d time.Duration, changed bool) {
	pt := t.byPass[pass]
	if pt == nil {
		pt = &PassTime{Pass: pass}
		t.byPass[pass] = pt
		t.order = append(t.order, pass)
	}
	pt.Runs++
	if changed {
		pt.Changed++
	}
	pt.Wall += d
}

// Seed inserts one pre-accounted row, used by the disk cache to
// replay a persisted compilation's deterministic timing columns (Runs,
// Changed, row order) with zero wall time.
func (t *Timing) Seed(pass string, runs, changed int64) {
	pt := t.byPass[pass]
	if pt == nil {
		pt = &PassTime{Pass: pass}
		t.byPass[pass] = pt
		t.order = append(t.order, pass)
	}
	pt.Runs += runs
	pt.Changed += changed
}

// Rows returns the per-pass accounting in insertion order (the
// deterministic order Seed must replay).
func (t *Timing) Rows() []PassTime {
	out := make([]PassTime, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.byPass[name])
	}
	return out
}

// Merge adds other's accounting into t (host + device totals).
func (t *Timing) Merge(other *Timing) {
	if other == nil {
		return
	}
	for _, name := range other.order {
		o := other.byPass[name]
		pt := t.byPass[name]
		if pt == nil {
			pt = &PassTime{Pass: name}
			t.byPass[name] = pt
			t.order = append(t.order, name)
		}
		pt.Runs += o.Runs
		pt.Changed += o.Changed
		pt.Wall += o.Wall
	}
}

// Passes returns the pass names in insertion (first-execution) order —
// the deterministic part of the table ordering, which the determinism
// tests compare across worker counts (Entries sorts by wall time,
// which is nondeterministic by nature).
func (t *Timing) Passes() []string {
	return append([]string(nil), t.order...)
}

// Get returns one pass's accounting (zero value if it never ran).
func (t *Timing) Get(pass string) PassTime {
	if pt, ok := t.byPass[pass]; ok {
		return *pt
	}
	return PassTime{Pass: pass}
}

// Entries returns the per-pass times sorted by wall time (descending),
// ties broken by name — the order LLVM's -time-passes report uses.
func (t *Timing) Entries() []PassTime {
	out := make([]PassTime, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.byPass[name])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wall != out[j].Wall {
			return out[i].Wall > out[j].Wall
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}

// Total returns the summed wall time of all passes.
func (t *Timing) Total() time.Duration {
	var sum time.Duration
	for _, pt := range t.byPass {
		sum += pt.Wall
	}
	return sum
}

// Print renders the report in the style of LLVM's -time-passes,
// followed by the analysis manager's cache counters when available.
func (t *Timing) Print(w io.Writer, an []analysis.Stats) {
	fmt.Fprintln(w, "===-------------------------------------------------------------------------===")
	fmt.Fprintln(w, "                      ... Pass execution timing report ...")
	fmt.Fprintln(w, "===-------------------------------------------------------------------------===")
	total := t.Total()
	fmt.Fprintf(w, "  Total Execution Time: %.4f seconds\n\n", total.Seconds())
	fmt.Fprintf(w, "   ---Wall Time---  --Runs-- -Changed-  --- Name ---\n")
	for _, pt := range t.Entries() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(pt.Wall) / float64(total)
		}
		fmt.Fprintf(w, "  %9.4f (%5.1f%%)  %8d %9d  %s\n",
			pt.Wall.Seconds(), pct, pt.Runs, pt.Changed, pt.Pass)
	}
	if len(an) > 0 {
		fmt.Fprintf(w, "\n   --Hits-- -Misses- -Invalidated-  --- Analysis ---\n")
		for _, s := range an {
			fmt.Fprintf(w, "  %8d %8d %13d  %s\n", s.Hits, s.Misses, s.Invalidations, s.Key)
		}
	}
}
