package passes

import (
	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/ir"
)

// EarlyCSE performs a per-block forward scan that reuses previously
// computed pure expressions and forwards memory: a load from a location
// that a prior store or load in the same block made available is
// replaced, with alias queries deciding which available entries an
// intervening write invalidates.
type EarlyCSE struct{}

// Name implements Pass.
func (*EarlyCSE) Name() string { return "Early CSE" }

type availEntry struct {
	loc aa.MemLoc
	val ir.Value // the value the location holds
}

// Run implements Pass.
func (p *EarlyCSE) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	changed := false
	q := ctx.Query(fn)
	for _, b := range fn.Blocks {
		exprs := map[string]*ir.Instr{}
		var avail []availEntry
		for _, in := range b.Instrs {
			if in.Dead() {
				continue
			}
			switch {
			case isPureOp(in):
				key := exprKey(in)
				if prev, ok := exprs[key]; ok {
					fn.ReplaceAllUses(in, prev)
					in.MarkDead()
					changed = true
					ctx.Stats.Add(p.Name(), "# instructions eliminated", 1)
					continue
				}
				exprs[key] = in

			case in.Op == ir.OpLoad:
				loc := aa.LocOfLoad(in)
				if v := lookupAvail(ctx, q, avail, loc, in.Ty); v != nil {
					fn.ReplaceAllUses(in, v)
					in.MarkDead()
					changed = true
					ctx.Stats.Add(p.Name(), "# instructions eliminated", 1)
					ctx.Stats.Add(p.Name(), "# loads forwarded", 1)
					continue
				}
				avail = append(avail, availEntry{loc, in})

			case in.WritesMemory():
				avail = invalidate(ctx, q, avail, in)
				if in.Op == ir.OpStore {
					avail = append(avail, availEntry{aa.LocOfStore(in), in.Operands[0]})
				}
			}
		}
	}
	if !changed {
		return analysis.All()
	}
	fn.Compact()
	return analysis.CFGOnly() // removes instructions, never edges
}

// lookupAvail finds an available entry whose location must-aliases loc
// with a compatible type.
func lookupAvail(ctx *Context, q *aa.QueryCtx, avail []availEntry, loc aa.MemLoc, ty *ir.Type) ir.Value {
	for i := len(avail) - 1; i >= 0; i-- {
		e := avail[i]
		if e.val.Type() != ty {
			continue
		}
		if !e.loc.Size.Known || !loc.Size.Known || e.loc.Size.Bytes != loc.Size.Bytes {
			continue
		}
		if ctx.AA.Alias(e.loc, loc, q) == aa.MustAlias {
			return e.val
		}
	}
	return nil
}

// invalidate drops the available entries the writer may clobber.
func invalidate(ctx *Context, q *aa.QueryCtx, avail []availEntry, writer *ir.Instr) []availEntry {
	out := avail[:0]
	for _, e := range avail {
		if !ctx.AA.InstrMayClobberLoc(writer, e.loc, q) {
			out = append(out, e)
		}
	}
	return out
}
