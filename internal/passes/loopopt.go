package passes

import (
	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/cfg"
	"github.com/oraql/go-oraql/internal/ir"
)

// LoopDeletion removes loops that provably do nothing: no writes to
// memory, no calls with effects, and no values defined inside used
// outside. Such loops typically appear after GVN and DSE strip a
// loop's body — the cascade the paper measures on Quicksilver (2 → 55
// deleted loops under ORAQL). The loop must have a preheader, a single
// exit, and an exit condition controlled by a recognizable induction
// variable, so deletion cannot change termination behaviour.
type LoopDeletion struct{}

// Name implements Pass.
func (*LoopDeletion) Name() string { return "Loop Deletion" }

// Run implements Pass.
func (p *LoopDeletion) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	changed := false
	for {
		info := ctx.CFG(fn)
		deleted := false
		for _, l := range info.Loops() {
			if l.Preheader == nil || len(l.Exits) != 1 {
				continue
			}
			if !loopIsDead(fn, l) || !loopTerminates(l) {
				continue
			}
			// Redirect the preheader straight to the exit.
			exit := l.Exits[0]
			// The exit must not have phis fed from in-loop blocks with
			// values defined in the loop (loopIsDead checked uses, but
			// phi incoming blocks also need rewiring).
			if !rewireExitPhis(l, exit) {
				continue
			}
			ph := l.Preheader.Term()
			ph.Succs = []*ir.Block{exit}
			ph.Operands = nil
			for _, b := range l.Blocks {
				for _, in := range b.Instrs {
					in.MarkDead()
				}
			}
			deleted = true
			changed = true
			ctx.Stats.Add(p.Name(), "# deleted loops", 1)
		}
		if !deleted {
			break
		}
		// Clean up unreachable loop bodies, then drop the stale CFG view
		// before re-analysing.
		(&SimplifyCFG{}).Run(fn, ctx)
		ctx.InvalidateAll(fn)
	}
	if !changed {
		return analysis.All()
	}
	return analysis.None() // rewired branches and removed blocks
}

// loopIsDead: no stores, no effectful calls, and no inside-defined
// value used outside the loop.
func loopIsDead(fn *ir.Func, l *cfg.Loop) bool {
	inLoop := map[*ir.Instr]bool{}
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Dead() {
				continue
			}
			switch in.Op {
			case ir.OpStore, ir.OpMemCpy, ir.OpMemSet:
				return false
			case ir.OpCall:
				eff := ir.CalleeEffects(in.Callee)
				if eff.Reads || eff.Writes || !isPureOp(in) {
					return false
				}
			}
			inLoop[in] = true
		}
	}
	for _, b := range fn.Blocks {
		if l.Contains(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Dead() {
				continue
			}
			for _, op := range in.Operands {
				if oi, ok := op.(*ir.Instr); ok && inLoop[oi] {
					return false
				}
			}
		}
	}
	return true
}

// loopTerminates recognizes the canonical counted loop emitted by the
// frontend: a header phi stepped by a constant and compared against a
// loop-invariant bound. Deleting anything else might drop a
// non-terminating loop, which would not be a semantics-preserving
// transformation.
func loopTerminates(l *cfg.Loop) bool {
	for _, b := range l.Blocks {
		t := b.Term()
		if t == nil || len(t.Succs) != 2 {
			continue
		}
		exits := !l.Contains(t.Succs[0]) || !l.Contains(t.Succs[1])
		if !exits {
			continue
		}
		cmp, ok := t.Operands[0].(*ir.Instr)
		if !ok || cmp.Op != ir.OpICmp {
			continue
		}
		if isCountedExit(l, cmp) {
			return true
		}
	}
	return false
}

func isCountedExit(l *cfg.Loop, cmp *ir.Instr) bool {
	for i := 0; i < 2; i++ {
		iv, ok := cmp.Operands[i].(*ir.Instr)
		if !ok {
			continue
		}
		bound := cmp.Operands[1-i]
		if bi, isIn := bound.(*ir.Instr); isIn && l.Contains(bi.Parent) {
			continue // bound varies inside the loop
		}
		if isInductionChain(l, iv) {
			return true
		}
	}
	return false
}

// isInductionChain checks iv is phi(init, iv+c) (possibly through the
// add side).
func isInductionChain(l *cfg.Loop, iv *ir.Instr) bool {
	phi := iv
	if iv.Op == ir.OpAdd {
		if p, ok := iv.Operands[0].(*ir.Instr); ok && p.Op == ir.OpPhi {
			phi = p
		} else if p, ok := iv.Operands[1].(*ir.Instr); ok && p.Op == ir.OpPhi {
			phi = p
		} else {
			return false
		}
	}
	if phi.Op != ir.OpPhi || phi.Parent != l.Header {
		return false
	}
	for i, v := range phi.Operands {
		if !l.Contains(phi.Incoming[i]) {
			continue
		}
		step, ok := v.(*ir.Instr)
		if !ok || step.Op != ir.OpAdd {
			return false
		}
		if step.Operands[0] != ir.Value(phi) && step.Operands[1] != ir.Value(phi) {
			return false
		}
		hasConst := false
		if c, isC := constOf(step.Operands[0]); isC && c != 0 {
			hasConst = true
		}
		if c, isC := constOf(step.Operands[1]); isC && c != 0 {
			hasConst = true
		}
		if !hasConst {
			return false
		}
	}
	return true
}

// rewireExitPhis checks the single exit block's phis only receive
// values from the preheader path after deletion; phis fed by loop
// blocks with loop-defined values block deletion (they were caught by
// loopIsDead), while loop-invariant incoming values are rewritten to
// flow from the preheader.
func rewireExitPhis(l *cfg.Loop, exit *ir.Block) bool {
	for _, in := range exit.Instrs {
		if in.Dead() || in.Op != ir.OpPhi {
			continue
		}
		for i, from := range in.Incoming {
			if l.Contains(from) {
				if vi, ok := in.Operands[i].(*ir.Instr); ok && l.Contains(vi.Parent) {
					return false
				}
				in.Incoming[i] = l.Preheader
			}
		}
	}
	return true
}

// LoopLoadElim forwards values stored earlier in the same loop
// iteration to loads later in that iteration across block boundaries,
// a pattern GVN's cross-block forwarding misses when the store and
// load sit in different loop blocks. Uses the MemorySSA walker.
type LoopLoadElim struct{}

// Name implements Pass.
func (*LoopLoadElim) Name() string { return "Loop Load Elimination" }

// Run implements Pass.
func (p *LoopLoadElim) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	info := ctx.CFG(fn)
	loops := info.Loops()
	if len(loops) == 0 {
		return analysis.All()
	}
	walker := ctx.MemSSA(fn)
	q := ctx.Query(fn)
	changed := false
	for _, l := range loops {
		for _, b := range l.Blocks {
			for _, in := range b.Instrs {
				if in.Dead() || in.Op != ir.OpLoad {
					continue
				}
				loc := aa.LocOfLoad(in)
				// Find a store in the same loop that dominates the load
				// and must-alias it, with nothing clobbering in between.
				for _, sb := range l.Blocks {
					if !info.Dominates(sb, b) || sb == b {
						continue
					}
					for _, st := range sb.Instrs {
						if st.Dead() || st.Op != ir.OpStore || st.Operands[0].Type() != in.Ty {
							continue
						}
						sLoc := aa.LocOfStore(st)
						if ctx.AA.Alias(sLoc, loc, q) != aa.MustAlias {
							continue
						}
						if !walker.NoClobberBetween(st, in, loc) {
							continue
						}
						fn.ReplaceAllUses(in, st.Operands[0])
						in.MarkDead()
						changed = true
						ctx.Stats.Add(p.Name(), "# loads eliminated", 1)
						goto nextLoad
					}
				}
			nextLoad:
			}
		}
	}
	if !changed {
		return analysis.All()
	}
	fn.Compact()
	removeDeadCode(fn)
	return analysis.CFGOnly() // deletes loads, never edges
}
