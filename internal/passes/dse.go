package passes

import (
	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/ir"
)

// DSE is dead-store elimination: a store is removed when a later store
// must overwrite the same bytes before any instruction may read them,
// or when it targets a non-captured local object that is never read at
// all. Alias queries decide both "may read" and "must overwrite".
type DSE struct{}

// Name implements Pass.
func (*DSE) Name() string { return "Dead Store Elimination" }

// Run implements Pass.
func (p *DSE) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	changed := false
	q := ctx.Query(fn)

	// Same-block overwrites.
	for _, b := range fn.Blocks {
		for i, s := range b.Instrs {
			if s.Dead() || s.Op != ir.OpStore {
				continue
			}
			loc := aa.LocOfStore(s)
		scan:
			for j := i + 1; j < len(b.Instrs); j++ {
				in := b.Instrs[j]
				if in.Dead() {
					continue
				}
				if in.Op == ir.OpStore {
					oLoc := aa.LocOfStore(in)
					if oLoc.Size.Known && loc.Size.Known && oLoc.Size.Bytes >= loc.Size.Bytes &&
						ctx.AA.Alias(oLoc, loc, q) == aa.MustAlias {
						s.MarkDead()
						changed = true
						ctx.Stats.Add(p.Name(), "# stores deleted", 1)
						break scan
					}
				}
				if ctx.AA.InstrMayReadLoc(in, loc, q) {
					break scan
				}
			}
		}
	}

	// Stores into never-read, non-captured local objects. Readness is
	// a structural property (use-list walk), not an alias query: a
	// non-captured object is only readable through pointers derived
	// from it, exactly as LLVM's DSE reasons about dead objects.
	for _, b := range fn.Blocks {
		for _, obj := range b.Instrs {
			if obj.Dead() || obj.Op != ir.OpAlloca {
				continue
			}
			if !aa.IsNonCaptured(obj) || objectIsRead(fn, obj) {
				continue
			}
			for _, bb := range fn.Blocks {
				for _, in := range bb.Instrs {
					if in.Dead() || (in.Op != ir.OpStore && in.Op != ir.OpMemSet) {
						continue
					}
					dst := in.Operands[1]
					if in.Op == ir.OpMemSet {
						dst = in.Operands[0]
					}
					if aa.UnderlyingObject(dst) == ir.Value(obj) {
						in.MarkDead()
						changed = true
						ctx.Stats.Add(p.Name(), "# stores deleted", 1)
					}
				}
			}
		}
	}

	if !changed {
		return analysis.All()
	}
	fn.Compact()
	removeDeadCode(fn)
	return analysis.CFGOnly() // deletes stores, never edges
}

// objectIsRead reports whether any instruction reads through a pointer
// derived from the non-captured object obj.
func objectIsRead(fn *ir.Func, obj *ir.Instr) bool {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Dead() || !in.ReadsMemory() {
				continue
			}
			reads, _ := aa.AccessLocs(in)
			for _, r := range reads {
				u := aa.UnderlyingObject(r.Ptr)
				if u == ir.Value(obj) || u == nil {
					// Derived from obj, or unknown provenance (stay
					// conservative even though non-capture implies it
					// cannot be obj).
					if u == ir.Value(obj) {
						return true
					}
				}
			}
			if in.Op == ir.OpCall && !ir.CalleeEffects(in.Callee).ArgMemOnly && len(reads) == 0 {
				return true // reads arbitrary memory
			}
		}
	}
	return false
}
