package passes

import (
	"encoding/json"
	"strings"

	"github.com/oraql/go-oraql/internal/diskcache"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/irtext"
)

// The pipeline-level disk cache persists one artifact per function:
// its fully optimized body plus the per-pipeline-position accounting
// (statistics deltas, changed flags) the pass manager would have
// produced by running the passes. A warm compilation swaps the cached
// body in and replays the accounting at the exact (pass, function)
// visit the cold pipeline would have executed, so -stats totals and
// the -time-passes row order are byte-identical warm and cold.
//
// Key derivation: the function key folds in the hash of the pristine
// module text, not just the function's own text, because the AA chain
// contains module-level analyses (Andersen, Steensgaard, Globals)
// that read every function and global — a change anywhere in the
// module can change alias answers inside an untouched function. This
// is conservative (no cross-module sharing of identical functions)
// but sound.
//
// ORAQL-active, blocking-mode and -debug-pass compilations never use
// this cache: the responder consumes its sequence in global query
// order, so per-function results are not independent artifacts there.
// The probe driver persists whole-test outcomes for those instead.

// fnEntry is the persisted per-function artifact.
type fnEntry struct {
	IR   string    `json:"ir"`   // optimized function text
	Runs []passRun `json:"runs"` // one per pipeline position
}

// passRun is one (pass, function) execution's replayable accounting.
type passRun struct {
	Stats   []Entry `json:"stats,omitempty"` // in insertion order
	Changed bool    `json:"changed,omitempty"`
	Ran     bool    `json:"ran,omitempty"` // false: function was skipped (no blocks)
}

// DiskPlan is one compilation's view of the per-function disk cache:
// which functions hit (their parsed bodies wait to be swapped in) and
// which missed (their pass runs are captured for persisting). Built
// by PlanDisk against the pristine module, before AA chain
// construction; bodies are swapped by Apply after the chain is built,
// so module-level analyses always see the pristine module.
type DiskPlan struct {
	store   *diskcache.Store
	nPasses int
	keys    []string   // per function index; "" = uncacheable (no blocks)
	parsed  []*ir.Func // hit: parsed replacement body (nil = miss)
	replay  [][]passRun
	records [][]passRun // miss: captured runs, indexed [fn][pass]
}

// PlanDisk looks every cacheable function up in the store and decodes
// (including parsing the optimized body) hits eagerly, so the hit/miss
// split is final when it returns. Must be called on the pristine
// module, before any pass has run.
func PlanDisk(store *diskcache.Store, m *ir.Module, p *Pipeline, configKey string) *DiskPlan {
	moduleCtx := diskcache.HashText(m.String())
	names := make([]string, len(p.Passes))
	for i, ps := range p.Passes {
		names[i] = ps.Name()
	}
	pipeID := strings.Join(names, ",")
	dp := &DiskPlan{
		store:   store,
		nPasses: len(p.Passes),
		keys:    make([]string, len(m.Funcs)),
		parsed:  make([]*ir.Func, len(m.Funcs)),
		replay:  make([][]passRun, len(m.Funcs)),
		records: make([][]passRun, len(m.Funcs)),
	}
	for i, fn := range m.Funcs {
		if len(fn.Blocks) == 0 {
			continue // declarations never run passes; nothing to cache
		}
		key := diskcache.Key("fn", moduleCtx, configKey, pipeID, fn.Name)
		dp.keys[i] = key
		if data, ok := store.Get(key); ok {
			var e fnEntry
			if json.Unmarshal(data, &e) == nil && len(e.Runs) == dp.nPasses {
				if parsed, err := irtext.ParseFuncInto(m, e.IR); err == nil && parsed.Name == fn.Name {
					dp.parsed[i] = parsed
					dp.replay[i] = e.Runs
					continue
				}
			}
			// Undecodable entry (stale format, bad parse): treat as a miss.
		}
		dp.records[i] = make([]passRun, dp.nPasses)
	}
	return dp
}

// AllHit reports whether every cacheable function hit — the caller may
// then skip AA chain construction entirely, since no pass will run.
func (dp *DiskPlan) AllHit() bool {
	for i, k := range dp.keys {
		if k != "" && dp.parsed[i] == nil {
			return false
		}
	}
	return true
}

// Hits returns the number of functions served from disk.
func (dp *DiskPlan) Hits() int {
	n := 0
	for _, f := range dp.parsed {
		if f != nil {
			n++
		}
	}
	return n
}

// Apply swaps the cached optimized bodies over their module slots.
// Call after the AA chain is constructed: module-level analyses must
// be built from the pristine module a cold compilation would see.
func (dp *DiskPlan) Apply(m *ir.Module) {
	for i, fn := range dp.parsed {
		if fn != nil {
			irtext.ReplaceFunc(m, i, fn)
		}
	}
}

// isHit reports whether function index i is served from the cache.
func (dp *DiskPlan) isHit(i int) bool { return dp.parsed[i] != nil }

// capturing reports whether function index i's runs should be recorded
// for persisting.
func (dp *DiskPlan) capturing(i int) bool { return dp.keys[i] != "" && dp.parsed[i] == nil }

// replayRun merges the persisted accounting of (pass pi, function fi)
// into the shared registries, at the same visit position the cold
// pipeline would have executed the pass.
func (dp *DiskPlan) replayRun(ctx *Context, pi, fi int, passName string) {
	r := dp.replay[fi][pi]
	if !r.Ran {
		return
	}
	for _, e := range r.Stats {
		ctx.Stats.Add(e.Pass, e.Stat, e.Value)
	}
	if ctx.Timing != nil {
		ctx.Timing.Record(passName, 0, r.Changed)
	}
}

// recordRun captures one executed (pass, function) run of a miss.
func (dp *DiskPlan) recordRun(fi, pi int, local *StatsRegistry, changed bool) {
	dp.records[fi][pi] = passRun{Stats: local.Ordered(), Changed: changed, Ran: true}
}

// Persist publishes every miss function's artifact. Call only after
// the pipeline ran to completion and the module verified: partial
// captures from a cancelled pipeline must not be published.
func (dp *DiskPlan) Persist(m *ir.Module) {
	for i, fn := range m.Funcs {
		if !dp.capturing(i) {
			continue
		}
		data, err := json.Marshal(fnEntry{IR: fn.String(), Runs: dp.records[i]})
		if err != nil {
			continue
		}
		dp.store.Put(dp.keys[i], data)
	}
}
