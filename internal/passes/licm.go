package passes

import (
	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/analysis"
	"github.com/oraql/go-oraql/internal/cfg"
	"github.com/oraql/go-oraql/internal/ir"
)

// LICM is loop-invariant code motion: pure computations with
// loop-invariant operands move to the preheader, and — the part alias
// analysis gates — loads from loop-invariant addresses are hoisted when
// no instruction in the loop may write the loaded location. The
// "# loads hoisted or sunk" statistic is the one the paper tracks
// across benchmarks in Fig. 6.
type LICM struct{}

// Name implements Pass.
func (*LICM) Name() string { return "Loop Invariant Code Motion" }

// Run implements Pass.
func (p *LICM) Run(fn *ir.Func, ctx *Context) analysis.PreservedAnalyses {
	info := ctx.CFG(fn)
	loops := info.Loops()
	if len(loops) == 0 {
		return analysis.All()
	}
	// Innermost loops first so hoisted code can cascade outwards.
	ordered := append([]*cfg.Loop(nil), loops...)
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if ordered[j].Depth > ordered[i].Depth {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}
	changed := false
	for _, l := range ordered {
		if l.Preheader == nil {
			continue
		}
		if p.runOnLoop(fn, ctx, info, l) {
			changed = true
		}
	}
	if !changed {
		return analysis.All()
	}
	fn.Compact()
	return analysis.CFGOnly() // moves instructions between existing blocks
}

func (p *LICM) runOnLoop(fn *ir.Func, ctx *Context, info *cfg.Info, l *cfg.Loop) bool {
	invariant := func(v ir.Value) bool {
		in, ok := v.(*ir.Instr)
		if !ok {
			return true
		}
		return !l.Contains(in.Parent)
	}
	allInvariant := func(in *ir.Instr) bool {
		for _, op := range in.Operands {
			if !invariant(op) {
				return false
			}
		}
		return true
	}
	// guaranteedToExecute: the block runs whenever the loop is entered,
	// i.e. it dominates every exiting block of the loop (no exit can be
	// taken before reaching it).
	guaranteedToExecute := func(b *ir.Block) bool {
		for _, lb := range l.Blocks {
			for _, s := range lb.Succs() {
				if !l.Contains(s) && !info.Dominates(b, lb) {
					return false
				}
			}
		}
		return true
	}
	q := ctx.Query(fn)
	mayClobberInLoop := func(loc aa.MemLoc) bool {
		for _, b := range l.Blocks {
			for _, in := range b.Instrs {
				if !in.Dead() && ctx.AA.InstrMayClobberLoc(in, loc, q) {
					return true
				}
			}
		}
		return false
	}

	changed := false
	for again := true; again; {
		again = false
		for _, b := range l.Blocks {
			for _, in := range b.Instrs {
				if in.Dead() || !allInvariant(in) {
					continue
				}
				switch {
				case isPureOp(in) && !hasConstantOperandsOnly(in):
					// Pure op on invariant operands: hoistable, except
					// that division must not introduce a trap on a
					// path that never executed it.
					if (in.Op == ir.OpSDiv || in.Op == ir.OpSRem) && !guaranteedToExecute(b) {
						if _, isC := in.Operands[1].(*ir.Const); !isC {
							continue
						}
					}
					moveToPreheader(in, l.Preheader)
					again, changed = true, true
					ctx.Stats.Add(p.Name(), "# instructions hoisted", 1)
				case in.Op == ir.OpLoad:
					// A load hoists when the loop cannot write its
					// location and hoisting cannot introduce a trap:
					// either the load was guaranteed to execute, or
					// the address is provably dereferenceable.
					if !guaranteedToExecute(b) && !derefPointer(in) {
						continue
					}
					if mayClobberInLoop(aa.LocOfLoad(in)) {
						continue
					}
					moveToPreheader(in, l.Preheader)
					again, changed = true, true
					ctx.Stats.Add(p.Name(), "# loads hoisted or sunk", 1)
				case in.Op == ir.OpStore:
					// Store sinking: a store of a loop-invariant value
					// to a loop-invariant address moves to the single
					// exit when nothing in the loop may read or
					// re-write the location and the store executes on
					// every path through the loop.
					if len(l.Exits) != 1 || !guaranteedToExecute(b) {
						continue
					}
					loc := aa.LocOfStore(in)
					if mayTouchInLoopBesides(ctx, q, l, loc, in) {
						continue
					}
					// The exit block must be dominated by the loop
					// (single exit of this loop only).
					if len(info.Preds[l.Exits[0]]) != 1 {
						continue
					}
					moveToBlockFront(in, l.Exits[0])
					again, changed = true, true
					ctx.Stats.Add(p.Name(), "# loads hoisted or sunk", 1)
					ctx.Stats.Add(p.Name(), "# stores sunk", 1)
				}
			}
		}
	}
	return changed
}

// mayTouchInLoopBesides reports whether any instruction in the loop
// other than the candidate store may read or write the location.
func mayTouchInLoopBesides(ctx *Context, q *aa.QueryCtx, l *cfg.Loop, loc aa.MemLoc, except *ir.Instr) bool {
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Dead() || in == except {
				continue
			}
			if ctx.AA.InstrMayClobberLoc(in, loc, q) || ctx.AA.InstrMayReadLoc(in, loc, q) {
				return true
			}
		}
	}
	return false
}

// moveToBlockFront removes in from its block and inserts it after the
// leading phis of target.
func moveToBlockFront(in *ir.Instr, target *ir.Block) {
	b := in.Parent
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			break
		}
	}
	at := 0
	for at < len(target.Instrs) && target.Instrs[at].Op == ir.OpPhi {
		at++
	}
	target.Instrs = append(target.Instrs[:at], append([]*ir.Instr{in}, target.Instrs[at:]...)...)
	in.Parent = target
}

// derefPointer reports whether the load address is provably
// dereferenceable (a constant offset into an alloca or global of known
// size), so hoisting it cannot introduce a trap.
func derefPointer(load *ir.Instr) bool {
	ptr := load.Operands[0]
	var off int64
	for depth := 0; depth < 64; depth++ {
		in, ok := ptr.(*ir.Instr)
		if !ok {
			break
		}
		if in.Op == ir.OpAlloca {
			return off >= 0 && off+load.Ty.Size() <= in.Size
		}
		if in.Op != ir.OpGEP {
			return false
		}
		off += in.Off
		if len(in.Operands) > 1 {
			c, isC := in.Operands[1].(*ir.Const)
			if !isC {
				return false
			}
			off += c.I * in.Scale
		}
		ptr = in.Operands[0]
	}
	if g, ok := ptr.(*ir.Global); ok {
		return off >= 0 && off+load.Ty.Size() <= g.Size
	}
	return false
}

// hasConstantOperandsOnly avoids endlessly hoisting constant
// expressions InstSimplify will fold anyway.
func hasConstantOperandsOnly(in *ir.Instr) bool {
	if len(in.Operands) == 0 {
		return true
	}
	for _, op := range in.Operands {
		if _, ok := op.(*ir.Const); !ok {
			return false
		}
	}
	return true
}

// moveToPreheader removes in from its block and inserts it before the
// preheader's terminator.
func moveToPreheader(in *ir.Instr, ph *ir.Block) {
	b := in.Parent
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			break
		}
	}
	// Insert before the terminator.
	ti := len(ph.Instrs) - 1
	for ti >= 0 && (ph.Instrs[ti].Dead() || !ph.Instrs[ti].IsTerminator()) {
		ti--
	}
	if ti < 0 {
		ti = len(ph.Instrs)
	}
	ph.Instrs = append(ph.Instrs[:ti], append([]*ir.Instr{in}, ph.Instrs[ti:]...)...)
	in.Parent = ph
}
