package passes

import (
	"github.com/oraql/go-oraql/internal/ir"
)

// vectorizeLoop rewrites the analyzed loop into
//
//	preheader -> vec.ph -> vec.header <-> vec.body
//	                          |
//	                          v
//	                      scalar.ph -> header (original loop, remainder)
//
// The vector loop runs while iv < nvec where nvec = bound - ((bound -
// init) mod 4); the original loop handles the remainder, its phis
// re-seeded from the vector loop's final state.
func vectorizeLoop(fn *ir.Func, plan *vecPlan) {
	vecPH := fn.NewBlock("vec.ph")
	vecHeader := fn.NewBlock("vec.header")
	vecBody := fn.NewBlock("vec.body")
	scalarPH := fn.NewBlock("scalar.ph")

	// Redirect the preheader into the vector pre-header.
	phTerm := plan.preheader.Term()
	for i, s := range phTerm.Succs {
		if s == plan.header {
			phTerm.Succs[i] = vecPH
		}
	}

	// vec.ph: nvec = bound - ((bound - init) mod 4), reduction seeds.
	b := ir.NewBuilder(vecPH)
	rangeV := b.Bin(ir.OpSub, plan.bound, plan.indInit, "vec.range")
	rem := b.Bin(ir.OpSRem, rangeV, ir.ConstInt(vecWidth), "vec.rem")
	nvec := b.Bin(ir.OpSub, plan.bound, rem, "vec.n")
	vinits := make([]ir.Value, len(plan.reductions))
	for i, r := range plan.reductions {
		z := b.VSplat(ir.V4I64, ir.ConstInt(0), "vred.zero")
		ins := &ir.Instr{Op: ir.OpVInsert, Ty: ir.V4I64,
			Operands: []ir.Value{z, r.init, ir.ConstInt(0)}, Name: "vred.init"}
		emitRaw(vecPH, fn, ins)
		vinits[i] = ins
	}
	b.Br(vecHeader)

	// vec.header: iv phi, vector reduction phis, bound check.
	b = ir.NewBuilder(vecHeader)
	ivPhi := b.Phi(ir.I64, "vec.iv")
	ir.AddIncoming(ivPhi, plan.indInit, vecPH)
	vaccPhis := make([]*ir.Instr, len(plan.reductions))
	for i := range plan.reductions {
		vaccPhis[i] = b.Phi(ir.V4I64, "vec.acc")
		ir.AddIncoming(vaccPhis[i], vinits[i], vecPH)
	}
	vcond := b.ICmp(ir.PredLT, ivPhi, nvec, "vec.cond")
	b.CondBr(vcond, vecBody, scalarPH)

	// vec.body: translate the scalar body instruction by instruction.
	b = ir.NewBuilder(vecBody)
	vmap := map[ir.Value]ir.Value{}      // scalar value -> vector value
	scalarMap := map[ir.Value]ir.Value{} // scalar value -> scalar clone in vec.body
	splats := map[ir.Value]ir.Value{}
	var getVec func(v ir.Value, elem *ir.Type) ir.Value
	getVec = func(v ir.Value, elem *ir.Type) ir.Value {
		if mv, ok := vmap[v]; ok {
			return mv
		}
		if v == ir.Value(plan.indStep) {
			// The step value i+1 used as data: lane vector of the
			// induction plus one.
			base := getVec(ir.Value(plan.indPhi), ir.I64)
			one := b.VSplat(ir.V4I64, ir.ConstInt(1), "vec.one")
			r := b.Bin(ir.OpAdd, base, one, "vec.iv.plus1")
			vmap[v] = r
			return r
		}
		if v == ir.Value(plan.indPhi) {
			// The induction variable used as a value: build the lane
			// vector <iv, iv+1, iv+2, iv+3> once.
			lanes := b.VSplat(ir.V4I64, ivPhi, "vec.iv.lanes")
			var cur ir.Value = lanes
			for l := int64(1); l < vecWidth; l++ {
				step := b.Bin(ir.OpAdd, ivPhi, ir.ConstInt(l), "vec.iv.step")
				ins := &ir.Instr{Op: ir.OpVInsert, Ty: ir.V4I64,
					Operands: []ir.Value{cur, step, ir.ConstInt(l)}, Name: "vec.iv.lane"}
				emitRaw(vecBody, fn, ins)
				cur = ins
			}
			vmap[v] = cur
			return cur
		}
		src := v
		if sc, ok := scalarMap[v]; ok {
			src = sc
		}
		if sv, ok := splats[src]; ok {
			return sv
		}
		sv := b.VSplat(ir.VecType(elem, vecWidth), src, "vec.splat")
		splats[src] = sv
		return sv
	}
	mapAddr := func(addr ir.Value) ir.Value {
		if mv, ok := vmap[addr]; ok {
			return mv
		}
		if sc, ok := scalarMap[addr]; ok {
			return sc
		}
		return addr
	}
	reductionByAdd := map[*ir.Instr]int{}
	for i, r := range plan.reductions {
		reductionByAdd[r.add] = i
	}
	vaccNexts := make([]ir.Value, len(plan.reductions))
	for _, in := range plan.body.Instrs {
		if in.Dead() || in == plan.indStep || in.Op == ir.OpBr {
			continue
		}
		switch in.Op {
		case ir.OpGEP:
			ac := plan.addr[in]
			var g *ir.Instr
			if ac.kind == addrConsecutive {
				g = b.GEP(ac.base, ivPhi, in.Scale, in.Off, "vec.gep")
			} else {
				var idx ir.Value
				if len(in.Operands) > 1 {
					idx = in.Operands[1]
				}
				g = b.GEP(in.Operands[0], idx, in.Scale, in.Off, "vec.gep")
			}
			g.Loc = in.Loc
			scalarMap[in] = g // addresses stay scalar
		case ir.OpLoad:
			ac, _ := lookupAddr(in.Operands[0], plan, func(ir.Value) bool { return true })
			addr := mapAddr(in.Operands[0])
			if ac.kind == addrConsecutive {
				ld := b.Load(ir.VecType(in.Ty, vecWidth), addr, in.TBAA)
				ld.Loc, ld.Scopes, ld.NoAliasScope = in.Loc, in.Scopes, in.NoAliasScope
				vmap[in] = ld
			} else {
				ld := b.Load(in.Ty, addr, in.TBAA)
				ld.Loc, ld.Scopes, ld.NoAliasScope = in.Loc, in.Scopes, in.NoAliasScope
				scalarMap[in] = ld
			}
		case ir.OpStore:
			val := in.Operands[0]
			vv := getVec(val, val.Type())
			st := b.Store(vv, mapAddr(in.Operands[1]), in.TBAA)
			st.Loc, st.Scopes, st.NoAliasScope = in.Loc, in.Scopes, in.NoAliasScope
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
			ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
			if ri, isRed := reductionByAdd[in]; isRed {
				r := plan.reductions[ri]
				x := in.Operands[0]
				if x == ir.Value(r.phi) {
					x = in.Operands[1]
				}
				vaccNexts[ri] = b.Bin(ir.OpAdd, vaccPhis[ri], getVec(x, ir.I64), "vec.acc.next")
				continue
			}
			elem := in.Ty
			nv := b.Bin(in.Op, getVec(in.Operands[0], elem), getVec(in.Operands[1], elem), "vec.op")
			nv.Ty = ir.VecType(elem, vecWidth)
			nv.Loc = in.Loc
			vmap[in] = nv
		case ir.OpSIToFP:
			nv := &ir.Instr{Op: ir.OpSIToFP, Ty: ir.V4F64,
				Operands: []ir.Value{getVec(in.Operands[0], ir.I64)}, Name: "vec.sitofp", Loc: in.Loc}
			emitRaw(vecBody, fn, nv)
			vmap[in] = nv
		case ir.OpFPToSI:
			nv := &ir.Instr{Op: ir.OpFPToSI, Ty: ir.V4I64,
				Operands: []ir.Value{getVec(in.Operands[0], ir.F64)}, Name: "vec.fptosi", Loc: in.Loc}
			emitRaw(vecBody, fn, nv)
			vmap[in] = nv
		}
	}
	ivNext := b.Bin(ir.OpAdd, ivPhi, ir.ConstInt(vecWidth), "vec.iv.next")
	ir.AddIncoming(ivPhi, ivNext, vecBody)
	for i := range plan.reductions {
		next := vaccNexts[i]
		if next == nil {
			next = vaccPhis[i]
		}
		ir.AddIncoming(vaccPhis[i], next, vecBody)
	}
	b.Br(vecHeader)

	// Count vector instructions for the statistics.
	for _, in := range vecBody.Instrs {
		if in.Ty.Kind == ir.KVec {
			plan.vectorInstrs++
		} else if in.Op == ir.OpStore && in.Operands[0].Type().Kind == ir.KVec {
			plan.vectorInstrs++
		}
	}

	// scalar.ph: reduce vector accumulators, enter the remainder loop.
	b = ir.NewBuilder(scalarPH)
	reds := make([]ir.Value, len(plan.reductions))
	for i := range plan.reductions {
		reds[i] = b.VReduce(vaccPhis[i], "vec.red")
	}
	b.Br(plan.header)

	// Re-seed the original loop phis from the vector loop's exit state.
	for _, in := range plan.header.Instrs {
		if in.Dead() || in.Op != ir.OpPhi {
			continue
		}
		for i, from := range in.Incoming {
			if from != plan.preheader {
				continue
			}
			in.Incoming[i] = scalarPH
			if in == plan.indPhi {
				in.Operands[i] = ivPhi
			}
			for ri, r := range plan.reductions {
				if in == r.phi {
					in.Operands[i] = reds[ri]
				}
			}
		}
	}
}

func emitRaw(bb *ir.Block, fn *ir.Func, in *ir.Instr) {
	in.ID = fn.AllocID()
	in.Parent = bb
	bb.Instrs = append(bb.Instrs, in)
}
