package progen

import (
	"fmt"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/pipeline"
)

// TestDeterministic pins the generator contract the corpus replay and
// the seeded CLI rely on: equal (seed, opts) yield identical sources.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, Options{})
		b := Generate(seed, Options{})
		if a.Source != b.Source {
			t.Fatalf("seed %d: generator is not deterministic", seed)
		}
	}
}

// TestSeedsDiffer guards against a collapsed RNG: distinct seeds must
// produce distinct programs (spot-checked pairwise on a small window).
func TestSeedsDiffer(t *testing.T) {
	seen := map[string]int64{}
	for seed := int64(0); seed < 10; seed++ {
		p := Generate(seed, Options{})
		if prev, dup := seen[p.Source]; dup {
			t.Fatalf("seeds %d and %d generated identical programs", prev, seed)
		}
		seen[p.Source] = seed
	}
}

// TestMinParallel checks the guarantee the model-differential tests
// depend on.
func TestMinParallel(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := Generate(seed, Options{MinParallel: 1})
		if p.Parallel < 1 {
			t.Errorf("seed %d: MinParallel not honored", seed)
		}
		if !strings.Contains(p.Source, "parallel for") {
			t.Errorf("seed %d: source has no parallel for", seed)
		}
	}
}

// TestFeatureToggles checks the Disable* knobs actually prune the
// grammar.
func TestFeatureToggles(t *testing.T) {
	p := Generate(7, Options{DisableCalls: true, DisableStructs: true,
		DisablePointers: true, DisableParallel: true, Stmts: 10})
	for _, banned := range []string{"h_axpy", "h_stencil", "h_sum", "Box", "new double", "parallel for"} {
		if strings.Contains(p.Source, banned) {
			t.Errorf("disabled feature %q still present:\n%s", banned, p.Source)
		}
	}
}

// TestGeneratedProgramsAreSound is the generator's own smoke oracle:
// every program must compile at O0 and O3 and agree on the output.
// The full matrix lives in internal/difftest; this keeps progen
// self-contained.
func TestGeneratedProgramsAreSound(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			p := Generate(int64(seed), Options{})
			host, _, err := minic.Compile(p.FileName, p.Source, minic.Options{})
			if err != nil {
				t.Fatalf("frontend: %v\nsource:\n%s", err, p.Source)
			}
			ref, err := irinterp.Run(&irinterp.Program{Host: host}, irinterp.Options{})
			if err != nil {
				t.Fatalf("O0 run: %v\nsource:\n%s", err, p.Source)
			}
			cr, err := pipeline.Compile(pipeline.Config{Name: "progen", Source: p.Source, SourceFile: p.FileName})
			if err != nil {
				t.Fatalf("O3 compile: %v\nsource:\n%s", err, p.Source)
			}
			got, err := irinterp.Run(cr.Program, irinterp.Options{})
			if err != nil {
				t.Fatalf("O3 run: %v\nsource:\n%s", err, p.Source)
			}
			if got.Stdout != ref.Stdout {
				t.Fatalf("MISCOMPILE seed %d:\n O0: %q\n O3: %q\nsource:\n%s", seed, ref.Stdout, got.Stdout, p.Source)
			}
		})
	}
}
