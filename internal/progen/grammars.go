package progen

// Grammar profiles are registered Options presets: named subsets of
// the generator's grammar that the fuzzing layers (oraql-fuzz,
// /v1/fuzz, campaign scripts) select by name. A new profile is a
// registration, not a difftest change.

import (
	"fmt"
	"strings"

	"github.com/oraql/go-oraql/internal/registry"
)

// stmtsOption documents the per-profile statement-count override.
var stmtsOption = registry.Option{
	Name: "stmts", Type: "integer",
	Description: "top-level statements per generated program (0 = generator default)",
	Default:     6,
}

func init() {
	for _, g := range []struct {
		name, desc string
		opts       Options
	}{
		{"default", "the full grammar: calls, structs/TBAA, pointer views, parallel regions", Options{}},
		{"scalar", "straight-line scalar code and loops only (no calls, structs, pointers, parallel)",
			Options{DisableCalls: true, DisableStructs: true, DisablePointers: true, DisableParallel: true}},
		{"no-pointers", "full grammar minus heap arrays and offset pointer views (no controlled aliasing)",
			Options{DisablePointers: true}},
		{"sequential", "full grammar minus parallel-for regions", Options{DisableParallel: true}},
		{"parallel-heavy", "full grammar with at least two parallel-for regions per program", Options{MinParallel: 2}},
	} {
		registry.Grammars.Register(registry.Entry{
			Name:        g.name,
			Description: g.desc,
			Options:     []registry.Option{stmtsOption},
			Value:       g.opts,
		})
	}
}

// GrammarByName resolves a registered grammar profile to its Options
// preset; stmts (when positive) overrides the profile's statement
// count.
func GrammarByName(name string, stmts int) (Options, error) {
	if name == "" {
		name = "default"
	}
	e, ok := registry.Grammars.Lookup(name)
	if !ok {
		return Options{}, fmt.Errorf("progen: unknown grammar profile %q (known: %s)",
			name, strings.Join(registry.Grammars.Names(), ", "))
	}
	opts := e.Value.(Options)
	if stmts > 0 {
		opts.Stmts = stmts
	}
	return opts, nil
}
