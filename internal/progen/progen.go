// Package progen generates random but UB-free minic programs for
// differential testing. It is the promoted, much richer successor of
// the ad-hoc generator that used to live inside the pipeline fuzz
// tests: on top of counted loops over bounds-wrapped array indices it
// produces pointer variables with controlled aliasing (offset views
// into named arrays), helper functions with plain and restrict pointer
// parameters, structs whose mixed int/double/pointer fields exercise
// TBAA, nested and triangular loops, and race-free parallel-for
// regions that lower to OpenMP, task, MPI, or offload code depending
// on the frontend model.
//
// Every program is UB-free by construction: all indices are wrapped
// into the accessed view's bounds, all divisors are strictly positive,
// every loop is counted, every object is initialized before use,
// restrict parameters only ever receive provably disjoint arrays, and
// parallel-for bodies write only their own iteration's element and
// never read an element another iteration writes. O0 and any sound
// optimized compilation must therefore agree on the output — the
// differential oracle in internal/difftest builds on exactly this
// property.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Options tunes the generator. The zero value enables every feature.
type Options struct {
	// Stmts is the number of top-level statements in main (default 6).
	Stmts int
	// DisableCalls suppresses helper functions and their call sites.
	DisableCalls bool
	// DisableStructs suppresses the struct declaration and its uses.
	DisableStructs bool
	// DisablePointers suppresses heap arrays and offset pointer views
	// (the controlled-aliasing feature).
	DisablePointers bool
	// DisableParallel suppresses parallel-for regions.
	DisableParallel bool
	// MinParallel guarantees at least this many parallel-for regions
	// (appended after the random statements when the dice under-rolled).
	MinParallel int
}

// Program is one generated test program.
type Program struct {
	Seed     int64
	FileName string
	Source   string
	// Parallel counts the emitted parallel-for regions.
	Parallel int
}

// view is an accessible window into a double array: the expression
// that names it, the underlying array it aliases, and the number of
// in-bounds elements.
type view struct {
	name string
	base string
	n    int
}

type gen struct {
	r    *rand.Rand
	opts Options
	sb   strings.Builder

	arrN     int
	views    []view // all double views (arrays, heap arrays, offset pointers)
	arrays   []view // whole arrays only (valid restrict args, parallel dsts)
	iarrays  []string
	scalars  []string
	depth    int
	parallel int
	hasBox   bool
}

// Generate builds the program for a seed. Equal (seed, opts) pairs
// yield byte-identical sources.
func Generate(seed int64, opts Options) *Program {
	if opts.Stmts <= 0 {
		opts.Stmts = 6
	}
	g := &gen{r: rand.New(rand.NewSource(seed)), opts: opts}
	g.arrN = 8 + g.r.Intn(3)*4
	g.emit()
	return &Program{
		Seed:     seed,
		FileName: fmt.Sprintf("fuzz-%d.mc", seed),
		Source:   g.sb.String(),
		Parallel: g.parallel,
	}
}

func (g *gen) pickView(pool []view) view  { return pool[g.r.Intn(len(pool))] }
func (g *gen) pickS(list []string) string { return list[g.r.Intn(len(list))] }

// fconst returns a small literal double constant.
func (g *gen) fconst() string { return fmt.Sprintf("%.3f", g.r.Float64()*4-2) }

// intExpr generates a non-negative int expression (the invariant that
// keeps the single-mod index wrapping in bounds).
func (g *gen) intExpr(iv string) string {
	switch g.r.Intn(3) {
	case 0:
		return fmt.Sprint(g.r.Intn(20))
	case 1:
		if iv != "" {
			return iv
		}
		return "3"
	default:
		a := g.pickS(g.iarrays)
		return fmt.Sprintf("%s[%s]", a, g.index(iv, g.arrN))
	}
}

// index generates an always-in-bounds index into a view of n elements.
func (g *gen) index(iv string, n int) string {
	if iv != "" && g.r.Intn(2) == 0 {
		if off := g.r.Intn(3); off > 0 {
			return fmt.Sprintf("(%s + %d) %% %d", iv, off, n)
		}
		return fmt.Sprintf("%s %% %d", iv, n)
	}
	return fmt.Sprintf("(%s) %% %d", g.intExpr(iv), n)
}

// expr generates a double-valued expression reading only views from
// pool (restricting the pool is how parallel bodies stay race-free).
func (g *gen) expr(iv string, pool []view, depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(5) {
		case 0:
			return g.fconst()
		case 1:
			if len(g.scalars) > 0 {
				return g.pickS(g.scalars)
			}
			return "1.25"
		case 2:
			if iv != "" {
				return "(double)" + iv
			}
			return "0.5"
		case 3:
			if g.hasBox && g.r.Intn(3) == 0 {
				return "bx.w"
			}
			fallthrough
		default:
			v := g.pickView(pool)
			return fmt.Sprintf("%s[%s]", v.name, g.index(iv, v.n))
		}
	}
	op := []string{"+", "-", "*"}[g.r.Intn(3)]
	l := g.expr(iv, pool, depth-1)
	r := g.expr(iv, pool, depth-1)
	if g.r.Intn(6) == 0 {
		// Division by a strictly positive value.
		return fmt.Sprintf("(%s %s %s) / (double)((%s) %% 5 + 1)", l, op, r, g.intExpr(iv))
	}
	return fmt.Sprintf("(%s %s %s)", l, op, r)
}

func (g *gen) line(format string, args ...any) {
	fmt.Fprintf(&g.sb, format+"\n", args...)
}

// emit produces the whole translation unit.
func (g *gen) emit() {
	if !g.opts.DisableStructs {
		g.emitStruct()
	}
	if !g.opts.DisableCalls {
		g.emitHelpers()
	}
	g.line("int main() {")
	g.emitDecls()
	for i := 0; i < g.opts.Stmts; i++ {
		g.stmt(1)
	}
	for g.parallel < g.opts.MinParallel && !g.opts.DisableParallel {
		g.parallelLoop()
	}
	g.emitPrints()
	g.line("return 0;")
	g.line("}")
}

func (g *gen) emitStruct() {
	g.line("struct Box {")
	g.line("double* d;")
	g.line("double* e;")
	g.line("int* m;")
	g.line("double w;")
	g.line("int k;")
	g.line("};")
}

// emitHelpers declares the callable kernels. Their bodies carry
// per-seed constants so different seeds exercise different folds.
func (g *gen) emitHelpers() {
	c1, c2, c3 := g.fconst(), g.fconst(), g.fconst()
	off := 1 + g.r.Intn(3)
	// h_axpy tolerates dst == src (controlled aliasing call sites).
	g.line("void h_axpy(double* dst, double* src, int n) {")
	g.line("for (int k = 0; k < n; k++) {")
	g.line("dst[k] = dst[k] * %s + src[(k + %d) %% n] * %s;", c1, off, c2)
	g.line("}")
	g.line("}")
	// h_sum mixes double and int reads (a TBAA workload).
	g.line("double h_sum(double* x, int* m, int n) {")
	g.line("double s = 0.0;")
	g.line("for (int k = 0; k < n; k++) {")
	g.line("s = s + x[k] * (double)(m[k] %% 7 + 1);")
	g.line("}")
	g.line("return s;")
	g.line("}")
	if !g.opts.DisablePointers {
		// h_stencil's restrict parameters demand disjoint arguments;
		// call sites only ever pass distinct whole arrays.
		g.line("void h_stencil(double* restrict dst, double* restrict src, int n) {")
		g.line("dst[0] = src[0] * %s;", c3)
		g.line("for (int k = 1; k < n - 1; k++) {")
		g.line("dst[k] = (src[k - 1] + src[k] + src[k + 1]) * 0.25;")
		g.line("}")
		g.line("dst[n - 1] = src[n - 1] * %s;", c3)
		g.line("}")
	}
	if !g.opts.DisableStructs {
		// h_box reads and writes through the struct's pointer fields
		// and accumulates into its int field (more TBAA pressure).
		g.line("void h_box(Box* b, int n) {")
		g.line("for (int k = 0; k < n; k++) {")
		g.line("b.d[k] = b.d[k] * b.w + b.e[(k + 1) %% n] * %s;", c2)
		g.line("b.k = b.k + b.m[k] %% 5;")
		g.line("}")
		g.line("}")
	}
}

// emitDecls declares and initializes every object main uses.
func (g *gen) emitDecls() {
	n := g.arrN
	for i := 0; i < 2+g.r.Intn(2); i++ {
		name := fmt.Sprintf("a%d", i)
		g.line("double %s[%d];", name, n)
		g.line("for (int z = 0; z < %d; z++) { %s[z] = (double)(z * %d) * 0.125; }", n, name, i+1)
		v := view{name: name, base: name, n: n}
		g.views = append(g.views, v)
		g.arrays = append(g.arrays, v)
	}
	if !g.opts.DisablePointers {
		for i := 0; i < 1+g.r.Intn(2); i++ {
			name := fmt.Sprintf("h%d", i)
			g.line("double* %s = new double[%d];", name, n)
			g.line("for (int z = 0; z < %d; z++) { %s[z] = (double)(z + %d) * 0.0625; }", n, name, i+3)
			v := view{name: name, base: name, n: n}
			g.views = append(g.views, v)
			g.arrays = append(g.arrays, v)
		}
		// Offset pointer views: genuine, controlled aliasing with their
		// base array that no conservative points-to analysis untangles.
		for i := 0; i < 1+g.r.Intn(2); i++ {
			base := g.pickView(g.arrays)
			off := 1 + g.r.Intn(base.n/2)
			name := fmt.Sprintf("p%d", i)
			g.line("double* %s = %s + %d;", name, base.name, off)
			g.views = append(g.views, view{name: name, base: base.base, n: base.n - off})
		}
	}
	for i := 0; i < 1+g.r.Intn(2); i++ {
		name := fmt.Sprintf("m%d", i)
		g.iarrays = append(g.iarrays, name)
		g.line("int %s[%d];", name, n)
		g.line("for (int z = 0; z < %d; z++) { %s[z] = (z * %d) %% 31; }", n, name, i+2)
	}
	for i := 0; i < 2+g.r.Intn(2); i++ {
		name := fmt.Sprintf("s%d", i)
		g.scalars = append(g.scalars, name)
		g.line("double %s = %.3f;", name, g.r.Float64())
	}
	if !g.opts.DisableStructs {
		g.hasBox = true
		d, e := g.pickView(g.views), g.pickView(g.views)
		g.line("Box bx;")
		g.line("bx.d = %s;", d.name)
		g.line("bx.e = %s;", e.name)
		g.line("bx.m = %s;", g.iarrays[0])
		g.line("bx.w = %.3f;", g.r.Float64())
		g.line("bx.k = %d;", g.r.Intn(5))
		// The box's pointer views keep their own bounds.
		g.views = append(g.views, view{name: "bx.d", base: d.base, n: d.n},
			view{name: "bx.e", base: e.base, n: e.n})
	}
}

// stmt emits one random statement.
func (g *gen) stmt(depth int) {
	iv := fmt.Sprintf("i%d", g.depth)
	g.depth++
	defer func() { g.depth-- }()
	kinds := []func(iv string, depth int){
		g.elementwise, g.reduction, g.conditional, g.intUpdate,
		g.nested, g.triangular,
	}
	if !g.opts.DisableCalls {
		kinds = append(kinds, g.call, g.call)
	}
	if g.hasBox {
		kinds = append(kinds, g.boxStmt)
	}
	if !g.opts.DisableParallel {
		kinds = append(kinds, func(string, int) { g.parallelLoop() })
	}
	kinds[g.r.Intn(len(kinds))](iv, depth)
}

func (g *gen) elementwise(iv string, _ int) {
	dst := g.pickView(g.views)
	g.line("for (int %s = 0; %s < %d; %s++) {", iv, iv, dst.n, iv)
	g.line("%s[%s] = %s;", dst.name, iv, g.expr(iv, g.views, 2))
	g.line("}")
}

func (g *gen) reduction(iv string, _ int) {
	s := g.pickS(g.scalars)
	g.line("for (int %s = 0; %s < %d; %s++) {", iv, iv, g.arrN, iv)
	g.line("%s = %s + %s;", s, s, g.expr(iv, g.views, 1))
	g.line("}")
}

func (g *gen) conditional(_ string, _ int) {
	a, b := g.pickS(g.scalars), g.pickS(g.scalars)
	g.line("if (%s > %s) {", a, b)
	g.line("%s = %s * 0.5;", a, g.expr("", g.views, 1))
	g.line("} else {")
	g.line("%s = %s + 0.25;", b, g.expr("", g.views, 1))
	g.line("}")
}

func (g *gen) intUpdate(iv string, _ int) {
	a := g.pickS(g.iarrays)
	g.line("for (int %s = 0; %s < %d; %s++) {", iv, iv, g.arrN, iv)
	g.line("%s[%s] = (%s + %d) %% 97;", a, iv, g.intExpr(iv), g.r.Intn(50))
	g.line("}")
}

func (g *gen) nested(iv string, depth int) {
	if depth <= 0 {
		g.line("%s = %s;", g.pickS(g.scalars), g.expr("", g.views, 2))
		return
	}
	jv := fmt.Sprintf("j%d", g.depth)
	dst := g.pickView(g.views)
	g.line("for (int %s = 0; %s < 4; %s++) {", iv, iv, iv)
	g.line("for (int %s = 0; %s < %d; %s++) {", jv, jv, dst.n, jv)
	g.line("%s[%s] = %s;", dst.name, jv, g.expr(jv, g.views, 1))
	g.line("}")
	g.line("}")
}

// triangular emits the classic lower-triangle update: the inner bound
// depends on the outer induction variable.
func (g *gen) triangular(iv string, _ int) {
	jv := fmt.Sprintf("j%d", g.depth)
	dst := g.pickView(g.arrays)
	g.line("for (int %s = 1; %s < %d; %s++) {", iv, iv, dst.n, iv)
	g.line("for (int %s = 0; %s < %s; %s++) {", jv, jv, iv, jv)
	g.line("%s[%s] = %s[%s] + %s[%s] * %s;", dst.name, jv, dst.name, jv, dst.name, iv, g.fconst())
	g.line("}")
	g.line("}")
}

// call emits a helper invocation. h_axpy may receive aliasing views;
// h_stencil only distinct whole arrays (its parameters are restrict).
func (g *gen) call(_ string, _ int) {
	switch g.r.Intn(4) {
	case 0:
		if !g.opts.DisablePointers && len(g.arrays) >= 2 {
			i := g.r.Intn(len(g.arrays))
			j := g.r.Intn(len(g.arrays) - 1)
			if j >= i {
				j++
			}
			dst, src := g.arrays[i], g.arrays[j]
			n := dst.n
			if src.n < n {
				n = src.n
			}
			g.line("h_stencil(%s, %s, %d);", dst.name, src.name, n)
			return
		}
		fallthrough
	case 1:
		dst, src := g.pickView(g.views), g.pickView(g.views)
		n := dst.n
		if src.n < n {
			n = src.n
		}
		g.line("h_axpy(%s, %s, %d);", dst.name, src.name, n)
	case 2:
		x := g.pickView(g.views)
		n := x.n
		if g.arrN < n {
			n = g.arrN
		}
		g.line("%s = %s + h_sum(%s, %s, %d);", g.pickS(g.scalars), g.pickS(g.scalars), x.name, g.pickS(g.iarrays), n)
	default:
		dst, src := g.pickView(g.views), g.pickView(g.views)
		n := dst.n
		if src.n < n {
			n = src.n
		}
		g.line("h_axpy(%s, %s, %d);", dst.name, src.name, n)
	}
}

// boxStmt touches the struct: an inline mixed-field loop or (when
// helpers exist) the h_box call.
func (g *gen) boxStmt(iv string, _ int) {
	boxN := g.arrN
	for _, v := range g.views {
		if (v.name == "bx.d" || v.name == "bx.e") && v.n < boxN {
			boxN = v.n
		}
	}
	if !g.opts.DisableCalls && g.r.Intn(2) == 0 {
		g.line("h_box(&bx, %d);", boxN)
		return
	}
	g.line("for (int %s = 0; %s < %d; %s++) {", iv, iv, boxN, iv)
	g.line("bx.d[%s] = bx.d[%s] + bx.e[(%s + 1) %% %d] * bx.w;", iv, iv, iv, boxN)
	g.line("bx.k = bx.k + bx.m[%s] %% 3;", iv)
	g.line("}")
}

// parallelLoop emits a race-free parallel-for: the destination is a
// whole array written only at the iteration's own index, and reads
// come from views over *other* arrays (plus the own element), so no
// iteration observes another iteration's writes under any model.
func (g *gen) parallelLoop() {
	if g.opts.DisableParallel {
		return
	}
	dst := g.pickView(g.arrays)
	var pool []view
	for _, v := range g.views {
		if v.base != dst.base {
			pool = append(pool, v)
		}
	}
	if len(pool) == 0 {
		return
	}
	g.parallel++
	iv := fmt.Sprintf("q%d", g.parallel)
	g.line("parallel for (%s = 0; %s < %d; %s++) {", iv, iv, dst.n, iv)
	g.line("%s[%s] = %s[%s] * %s + %s;", dst.name, iv, dst.name, iv, g.fconst(), g.expr(iv, pool, 2))
	g.line("}")
}

// emitPrints writes the checksum epilogue that makes every memory
// effect observable.
func (g *gen) emitPrints() {
	for _, v := range g.arrays {
		g.line("print(\"%s \", checksum(%s, %d), \"\\n\");", v.name, v.name, v.n)
	}
	for _, a := range g.iarrays {
		g.line("print(\"%s \", checksumi(%s, %d), \"\\n\");", a, a, g.arrN)
	}
	for _, s := range g.scalars {
		g.line("print(\"%s \", %s, \"\\n\");", s, s)
	}
	if g.hasBox {
		g.line("print(\"bx \", bx.w, \" \", bx.k, \"\\n\");")
	}
}
