// Package verify implements the ORAQL verification script (paper
// Section IV-C): it compares a run's stdout against one or more
// reference outputs, with regular expressions masking volatile parts
// (timings, machine-dependent noise) before comparison.
package verify

import (
	"regexp"
	"strings"
)

// Spec configures verification for one benchmark.
type Spec struct {
	// References are the acceptable outputs (at least one must match
	// after masking). The paper uses several references when output
	// legitimately varies between configurations.
	References []string
	// MaskPatterns are regular expressions replaced by a fixed token in
	// both the reference and the candidate before comparison; use them
	// for timings and other volatile fields.
	MaskPatterns []string

	masks []*regexp.Regexp
}

// Compile pre-compiles the mask patterns; call once before Check.
func (s *Spec) Compile() error {
	s.masks = s.masks[:0]
	for _, p := range s.MaskPatterns {
		re, err := regexp.Compile(p)
		if err != nil {
			return err
		}
		s.masks = append(s.masks, re)
	}
	return nil
}

// Mask applies the volatile-field masking to an output.
func (s *Spec) Mask(out string) string {
	for _, re := range s.masks {
		out = re.ReplaceAllString(out, "<masked>")
	}
	return out
}

// Result reports a verification outcome.
type Result struct {
	OK bool
	// Diff is a short human-readable mismatch description when !OK.
	Diff string
}

// Check verifies a run's stdout (runErr non-nil means the run crashed
// or tripped the simulator, which always fails verification).
func (s *Spec) Check(stdout string, runErr error) Result {
	if runErr != nil {
		return Result{OK: false, Diff: "run failed: " + runErr.Error()}
	}
	got := s.Mask(stdout)
	var firstDiff string
	for _, ref := range s.References {
		want := s.Mask(ref)
		if got == want {
			return Result{OK: true}
		}
		if firstDiff == "" {
			firstDiff = diffLine(want, got)
		}
	}
	if firstDiff == "" {
		firstDiff = "no references configured"
	}
	return Result{OK: false, Diff: firstDiff}
}

// diffLine locates the first differing line for diagnostics.
func diffLine(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return "line " + itoa(i+1) + ": want " + quote(wl[i]) + ", got " + quote(gl[i])
		}
	}
	if len(wl) != len(gl) {
		return "output has " + itoa(len(gl)) + " lines, reference has " + itoa(len(wl))
	}
	return "outputs differ"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func quote(s string) string {
	if len(s) > 120 {
		s = s[:120] + "..."
	}
	return "\"" + s + "\""
}
