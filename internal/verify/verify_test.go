package verify

import (
	"errors"
	"strings"
	"testing"
)

func TestExactMatch(t *testing.T) {
	s := &Spec{References: []string{"a\nb\n"}}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("a\nb\n", nil); !r.OK {
		t.Errorf("exact match must pass: %s", r.Diff)
	}
	if r := s.Check("a\nc\n", nil); r.OK {
		t.Error("mismatch must fail")
	} else if !strings.Contains(r.Diff, "line 2") {
		t.Errorf("diff should name line 2: %q", r.Diff)
	}
}

func TestRunErrorFails(t *testing.T) {
	s := &Spec{References: []string{"x"}}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	r := s.Check("x", errors.New("simulated trap: boom"))
	if r.OK || !strings.Contains(r.Diff, "boom") {
		t.Errorf("crashed runs must fail verification: %+v", r)
	}
}

func TestMaskingVolatileFields(t *testing.T) {
	s := &Spec{
		References:   []string{"fom 3.5\ntime 123 ms\n"},
		MaskPatterns: []string{`time [0-9]+ ms`},
	}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("fom 3.5\ntime 9999 ms\n", nil); !r.OK {
		t.Errorf("masked timing must pass: %s", r.Diff)
	}
	if r := s.Check("fom 3.6\ntime 123 ms\n", nil); r.OK {
		t.Error("figure-of-merit change must still fail")
	}
}

func TestMultipleReferences(t *testing.T) {
	s := &Spec{References: []string{"variant A\n", "variant B\n"}}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("variant B\n", nil); !r.OK {
		t.Error("any matching reference must pass")
	}
	if r := s.Check("variant C\n", nil); r.OK {
		t.Error("non-matching output must fail")
	}
}

func TestBadRegexRejected(t *testing.T) {
	s := &Spec{References: []string{"x"}, MaskPatterns: []string{"("}}
	if err := s.Compile(); err == nil {
		t.Error("invalid regex must be rejected at Compile")
	}
}

func TestNoReferences(t *testing.T) {
	s := &Spec{}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("anything", nil); r.OK {
		t.Error("no references must fail")
	}
}

func TestLineCountDiff(t *testing.T) {
	s := &Spec{References: []string{"a\nb\n"}}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	r := s.Check("a\nb\nc\n", nil)
	if r.OK || r.Diff == "" {
		t.Errorf("line-count mismatch diff: %+v", r)
	}
}

// TestOverlappingMasks checks that mask patterns compose left to right
// and that a pattern may rewrite text already touched by an earlier
// one: masking is substitution to a fixed token, so overlapping
// matches must still converge to equal strings on both sides.
func TestOverlappingMasks(t *testing.T) {
	s := &Spec{
		References: []string{"rank 0: time 12 ms on node-7\n"},
		MaskPatterns: []string{
			`time [0-9]+ ms`, // hits first, leaves "<masked>"
			`node-[0-9]+`,    // disjoint match
			`rank [0-9]+`,    // prefix overlapping the line start
			`<masked> on`,    // re-matches the first substitution
		},
	}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("rank 3: time 99999 ms on node-123\n", nil); !r.OK {
		t.Errorf("all volatile fields masked, must pass: %s", r.Diff)
	}
	if r := s.Check("rank 3: time 99 ms off node-1\n", nil); r.OK {
		t.Error("text outside every mask still differs, must fail")
	}
}

// TestMaskAppliesToAllReferences checks masking is symmetric: the
// reference side is masked with the same patterns as the candidate,
// for every reference in a multi-reference spec.
func TestMaskAppliesToAllReferences(t *testing.T) {
	s := &Spec{
		References:   []string{"sum 1.5 seed 11\n", "sum 2.5 seed 22\n"},
		MaskPatterns: []string{`seed [0-9]+`},
	}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("sum 2.5 seed 77\n", nil); !r.OK {
		t.Errorf("second reference must match after masking both sides: %s", r.Diff)
	}
	if r := s.Check("sum 3.5 seed 11\n", nil); r.OK {
		t.Error("no reference matches outside the mask, must fail")
	}
}

// TestCompileReuseAfterMutation checks that Compile can be called
// again after the spec is mutated: stale compiled masks must not leak
// into the new configuration, in either direction.
func TestCompileReuseAfterMutation(t *testing.T) {
	s := &Spec{
		References:   []string{"v 1 t 5\n"},
		MaskPatterns: []string{`t [0-9]+`},
	}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("v 1 t 9\n", nil); !r.OK {
		t.Fatalf("initial mask must apply: %s", r.Diff)
	}

	// Drop the mask: recompiling must forget the old pattern.
	s.MaskPatterns = nil
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("v 1 t 9\n", nil); r.OK {
		t.Error("stale mask survived recompilation")
	}

	// Add a different mask and new references: both must take effect.
	s.References = []string{"v 2 t 5\n"}
	s.MaskPatterns = []string{`v [0-9]+`}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("v 9 t 5\n", nil); !r.OK {
		t.Errorf("new mask must apply after recompilation: %s", r.Diff)
	}
	if r := s.Check("v 2 t 6\n", nil); r.OK {
		t.Error("old mask must no longer apply after recompilation")
	}

	// Recompiling into an error state must not keep the program
	// running with half-updated masks silently.
	s.MaskPatterns = []string{`v [0-9]+`, `(`}
	if err := s.Compile(); err == nil {
		t.Error("invalid pattern must fail recompilation")
	}
}

// TestMaskedCrashStillFails pins the precedence: a crashed run fails
// verification even when its stdout would match after masking.
func TestMaskedCrashStillFails(t *testing.T) {
	s := &Spec{References: []string{"ok\n"}, MaskPatterns: []string{`ok`}}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("ok\n", errors.New("trap")); r.OK {
		t.Error("runErr must dominate a masked output match")
	}
}
