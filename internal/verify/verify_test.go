package verify

import (
	"errors"
	"strings"
	"testing"
)

func TestExactMatch(t *testing.T) {
	s := &Spec{References: []string{"a\nb\n"}}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("a\nb\n", nil); !r.OK {
		t.Errorf("exact match must pass: %s", r.Diff)
	}
	if r := s.Check("a\nc\n", nil); r.OK {
		t.Error("mismatch must fail")
	} else if !strings.Contains(r.Diff, "line 2") {
		t.Errorf("diff should name line 2: %q", r.Diff)
	}
}

func TestRunErrorFails(t *testing.T) {
	s := &Spec{References: []string{"x"}}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	r := s.Check("x", errors.New("simulated trap: boom"))
	if r.OK || !strings.Contains(r.Diff, "boom") {
		t.Errorf("crashed runs must fail verification: %+v", r)
	}
}

func TestMaskingVolatileFields(t *testing.T) {
	s := &Spec{
		References:   []string{"fom 3.5\ntime 123 ms\n"},
		MaskPatterns: []string{`time [0-9]+ ms`},
	}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("fom 3.5\ntime 9999 ms\n", nil); !r.OK {
		t.Errorf("masked timing must pass: %s", r.Diff)
	}
	if r := s.Check("fom 3.6\ntime 123 ms\n", nil); r.OK {
		t.Error("figure-of-merit change must still fail")
	}
}

func TestMultipleReferences(t *testing.T) {
	s := &Spec{References: []string{"variant A\n", "variant B\n"}}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("variant B\n", nil); !r.OK {
		t.Error("any matching reference must pass")
	}
	if r := s.Check("variant C\n", nil); r.OK {
		t.Error("non-matching output must fail")
	}
}

func TestBadRegexRejected(t *testing.T) {
	s := &Spec{References: []string{"x"}, MaskPatterns: []string{"("}}
	if err := s.Compile(); err == nil {
		t.Error("invalid regex must be rejected at Compile")
	}
}

func TestNoReferences(t *testing.T) {
	s := &Spec{}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	if r := s.Check("anything", nil); r.OK {
		t.Error("no references must fail")
	}
}

func TestLineCountDiff(t *testing.T) {
	s := &Spec{References: []string{"a\nb\n"}}
	if err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	r := s.Check("a\nb\nc\n", nil)
	if r.OK || r.Diff == "" {
		t.Errorf("line-count mismatch diff: %+v", r)
	}
}
