package cliutil

import (
	"fmt"

	"github.com/oraql/go-oraql/internal/diskcache"
)

// OpenCache opens the shared persistent compile cache for a -cache-dir
// flag value. An empty dir disables caching (nil store, nil error);
// maxMB caps the directory size in MiB (0 = the store default).
func OpenCache(dir string, maxMB int) (*diskcache.Store, error) {
	if dir == "" {
		return nil, nil
	}
	var opts []diskcache.Option
	if maxMB > 0 {
		opts = append(opts, diskcache.WithMaxBytes(int64(maxMB)<<20))
	}
	store, err := diskcache.Open(dir, opts...)
	if err != nil {
		return nil, fmt.Errorf("open cache dir %s: %w", dir, err)
	}
	return store, nil
}
