package cliutil

import (
	"fmt"
	"io"

	"github.com/oraql/go-oraql/internal/registry"
)

// PrintRegistries renders every extension point the process has
// registered — strategies, AA analyses and chains, app configs,
// grammar profiles — as the shared `-list` output of the CLIs. The
// kinds argument filters to specific registry kinds; empty prints all,
// in registration order.
func PrintRegistries(w io.Writer, kinds ...string) {
	want := map[string]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	first := true
	for _, r := range registry.All() {
		if len(want) > 0 && !want[r.Kind()] {
			continue
		}
		if !first {
			fmt.Fprintln(w)
		}
		first = false
		fmt.Fprintf(w, "%s — %s\n", r.Kind(), r.Description())
		for _, e := range r.Entries() {
			fmt.Fprintf(w, "  %-22s %s\n", e.Name, e.Description)
			for _, o := range e.Options {
				fmt.Fprintf(w, "    -%s (%s): %s\n", o.Name, o.Type, o.Description)
			}
		}
	}
}
