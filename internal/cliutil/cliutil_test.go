package cliutil

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"plain", errors.New("boom"), ExitFailure},
		{"usage", Usagef("bad flag"), ExitUsage},
		{"wrapped usage", fmt.Errorf("outer: %w", Usagef("inner")), ExitUsage},
		{"wrapusage", WrapUsage(errors.New("flag: help requested")), ExitUsage},
	}
	for _, tc := range cases {
		if got := ExitCode(tc.err); got != tc.want {
			t.Errorf("%s: ExitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestWrapUsageNil(t *testing.T) {
	if WrapUsage(nil) != nil {
		t.Fatal("WrapUsage(nil) should stay nil")
	}
}

func TestUsageUnwrap(t *testing.T) {
	inner := errors.New("inner")
	if !errors.Is(WrapUsage(inner), inner) {
		t.Fatal("WrapUsage should unwrap to the original error")
	}
}

func TestReportProse(t *testing.T) {
	var buf strings.Builder
	code := Report(&buf, "oraql", false, errors.New("no such config"))
	if code != ExitFailure {
		t.Fatalf("code = %d, want %d", code, ExitFailure)
	}
	if got := buf.String(); got != "oraql: no such config\n" {
		t.Fatalf("prose output = %q", got)
	}
}

func TestReportJSONEnvelope(t *testing.T) {
	var buf strings.Builder
	code := Report(&buf, "oraql-opt", true, Usagef("unknown model %q", "gpu2"))
	if code != ExitUsage {
		t.Fatalf("code = %d, want %d", code, ExitUsage)
	}
	var env Envelope
	if err := json.Unmarshal([]byte(buf.String()), &env); err != nil {
		t.Fatalf("envelope is not one JSON object: %v (%q)", err, buf.String())
	}
	if env.Tool != "oraql-opt" || env.Code != ExitUsage || !strings.Contains(env.Error, "gpu2") {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestReportNil(t *testing.T) {
	var buf strings.Builder
	if code := Report(&buf, "oraql", true, nil); code != ExitOK {
		t.Fatalf("code = %d, want 0", code)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil error should print nothing, got %q", buf.String())
	}
}

func TestWantsJSON(t *testing.T) {
	cases := []struct {
		argv []string
		want bool
	}{
		{nil, false},
		{[]string{"probe", "cfg"}, false},
		{[]string{"probe", "-json"}, true},
		{[]string{"--json"}, true},
		{[]string{"-json=out.json"}, true},
		{[]string{"--json=-"}, true},
		{[]string{"json"}, false},             // bare positional, not a flag
		{[]string{"-jsonish"}, false},         // prefix but not the flag
		{[]string{"-v", "-json", "x"}, true},
	}
	for _, tc := range cases {
		if got := WantsJSON(tc.argv); got != tc.want {
			t.Errorf("WantsJSON(%v) = %v, want %v", tc.argv, got, tc.want)
		}
	}
}
