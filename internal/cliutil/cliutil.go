// Package cliutil gives every oraql CLI one exit-code and error
// contract:
//
//	0  success
//	1  operational failure (compile error, divergence, I/O, server)
//	2  usage error (bad flags, unknown subcommand, missing arguments)
//
// and one shared `-json` error envelope: when a tool runs in JSON
// mode, failures are emitted to stderr as a single JSON object
// ({"tool": ..., "error": ..., "code": ...}) instead of a prose line,
// so scripted callers parse one shape across all four CLIs and the
// serve API alike.
package cliutil

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Exit codes shared by all CLIs.
const (
	ExitOK      = 0
	ExitFailure = 1
	ExitUsage   = 2
)

// usageError marks an error as the caller's fault (exit code 2).
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// Usagef returns a usage error (exit code 2).
func Usagef(format string, args ...any) error {
	return usageError{err: fmt.Errorf(format, args...)}
}

// WrapUsage marks an existing error (e.g. from flag parsing) as a
// usage error; nil stays nil.
func WrapUsage(err error) error {
	if err == nil {
		return nil
	}
	return usageError{err: err}
}

// IsUsage reports whether err is marked as a usage error.
func IsUsage(err error) bool {
	var ue usageError
	return errors.As(err, &ue)
}

// ExitCode maps an error to the shared exit-code contract.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case IsUsage(err):
		return ExitUsage
	default:
		return ExitFailure
	}
}

// Envelope is the shared JSON error shape.
type Envelope struct {
	Tool  string `json:"tool"`
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// Report prints err under the shared contract — prose
// ("tool: message") by default, the JSON envelope in JSON mode — and
// returns the process exit code. A nil err prints nothing.
func Report(stderr io.Writer, tool string, jsonMode bool, err error) int {
	code := ExitCode(err)
	if err == nil {
		return code
	}
	if jsonMode {
		data, merr := json.Marshal(Envelope{Tool: tool, Error: err.Error(), Code: code})
		if merr != nil {
			fmt.Fprintf(stderr, "%s: %v\n", tool, err)
			return code
		}
		fmt.Fprintln(stderr, string(data))
		return code
	}
	fmt.Fprintf(stderr, "%s: %v\n", tool, err)
	return code
}

// WantsJSON reports whether argv requests JSON mode, recognising
// `-json`, `--json`, `-json=...`, and `--json=...` anywhere on the
// command line (before flag parsing runs, so parse failures are
// enveloped too).
func WantsJSON(argv []string) bool {
	for _, a := range argv {
		if !strings.HasPrefix(a, "-") {
			continue
		}
		trimmed := strings.TrimPrefix(strings.TrimPrefix(a, "-"), "-")
		if trimmed == "json" || strings.HasPrefix(trimmed, "json=") {
			return true
		}
	}
	return false
}
