package irtext_test

import (
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/irtext"
)

// TestConstTypeRoundTrip pins the constant-typing contract of the
// textual form: in positions without an explicit type (vsplat, select,
// call arguments) the token itself carries the type — "3" is an i64,
// "3.0" a double. Before this was enforced, an integer vector splat
// printed as "vsplat 3" and re-parsed as a double splat, so modules
// re-materialized from text (the disk cache's TU layer) silently
// computed different results than the modules they were saved from.
func TestConstTypeRoundTrip(t *testing.T) {
	src := `; module m target=cpu

define double @main() {
entry:
  %vi = vsplat 3
  %vf = vsplat 2.5
  %si = vreduce %vi
  %sf = vreduce %vf
  %c = icmp gt %si, 0
  %sel = select %c, 1.5, 2.5
  %r = fadd %sf, %sel
  ret %r
}
`
	m, err := irtext.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]*ir.Instr{}
	for _, b := range m.Funcs[0].Blocks {
		for _, in := range b.Instrs {
			vals[in.Name] = in
		}
	}
	wantTy := map[string]*ir.Type{
		"vi": ir.V4I64, "vf": ir.V4F64, "si": ir.I64, "sf": ir.F64, "sel": ir.F64,
	}
	for name, ty := range wantTy {
		in := vals[name]
		if in == nil {
			t.Fatalf("missing %%%s", name)
		}
		if in.Ty != ty {
			t.Errorf("%%%s: type %s, want %s", name, in.Ty, ty)
		}
	}
	if c, ok := vals["vi"].Operands[0].(*ir.Const); !ok || c.Ty != ir.I64 || c.I != 3 {
		t.Errorf("vsplat 3 operand: %#v, want i64 3", vals["vi"].Operands[0])
	}
	if c, ok := vals["sel"].Operands[1].(*ir.Const); !ok || c.Ty != ir.F64 || c.F != 1.5 {
		t.Errorf("select float operand: %#v, want double 1.5", vals["sel"].Operands[1])
	}

	// print→parse→print fixpoint, and the printed text keeps the
	// distinguishing markers.
	text := m.String()
	for _, want := range []string{"vsplat 3\n", "vsplat 2.5"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed text lost the constant type marker %q:\n%s", want, text)
		}
	}
	m2, err := irtext.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if m2.String() != text {
		t.Errorf("print->parse->print not a fixpoint")
	}
}

// TestFormatF64 pins the float rendering: always re-parseable as a
// float (never mistakable for an integer token), always exact.
func TestFormatF64(t *testing.T) {
	cases := map[float64]string{
		3:      "3.0",
		-2:     "-2.0",
		2.5:    "2.5",
		1e21:   "1e+21",
		0:      "0.0",
		0.1:    "0.1",
		1 << 60: "1.152921504606847e+18",
	}
	for f, want := range cases {
		if got := ir.FormatF64(f); got != want {
			t.Errorf("FormatF64(%v) = %q, want %q", f, got, want)
		}
	}
}
