package irtext_test

import (
	"testing"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/irtext"
	"github.com/oraql/go-oraql/internal/minic"
)

// A function printed, re-parsed against its module, and swapped back
// in must leave the module text unchanged and verifying.
func TestParseFuncIntoRoundTrip(t *testing.T) {
	cfg := apps.ByID("lulesh-seq")
	host, _, err := minic.Compile(cfg.SourceName, cfg.Source, cfg.Frontend)
	if err != nil {
		t.Fatal(err)
	}
	before := host.String()
	for i, fn := range host.Funcs {
		text := fn.String()
		parsed, err := irtext.ParseFuncInto(host, text)
		if err != nil {
			t.Fatalf("%s: %v", fn.Name, err)
		}
		if got := parsed.String(); got != text {
			t.Fatalf("%s: reprint differs\n--- printed\n%s\n--- reparsed\n%s", fn.Name, text, got)
		}
		irtext.ReplaceFunc(host, i, parsed)
		if parsed.ID != i || parsed.Parent != host {
			t.Fatalf("%s: replacement identity ID=%d parent=%p", fn.Name, parsed.ID, parsed.Parent)
		}
	}
	if after := host.String(); after != before {
		t.Fatal("module text changed after full function replacement")
	}
	if err := ir.Verify(host); err != nil {
		t.Fatalf("module does not verify after replacement: %v", err)
	}
}

func TestParseFuncIntoRejectsGarbage(t *testing.T) {
	m := ir.NewModule("m")
	if _, err := irtext.ParseFuncInto(m, "not a function"); err == nil {
		t.Fatal("want error for non-function text")
	}
	if len(m.Funcs) != 0 {
		t.Fatal("failed parse leaked a function into the module")
	}
}
