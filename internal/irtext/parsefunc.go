package irtext

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/oraql/go-oraql/internal/ir"
)

// funcParser resolves one function body in two passes: the first
// creates blocks and instruction shells (so forward references work),
// the second parses operands.
type funcParser struct {
	m        *ir.Module
	fn       *ir.Func
	values   map[string]ir.Value  // %ident -> value
	blocks   map[string]*ir.Block // label -> block
	raw      []rawInstr
	curLabel string
}

type rawInstr struct {
	in   *ir.Instr
	text string // instruction text after "name = ", metadata stripped
	meta string // metadata tail
	line int
}

// body parses the function's body lines (labels + instructions).
func (fp *funcParser) body(lines []string, baseLine int) error {
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			label := strings.TrimSuffix(line, ":")
			fp.getBlock(label)
			fp.curLabel = label
			continue
		}
		if err := fp.shell(line, baseLine+i); err != nil {
			return err
		}
	}
	for _, r := range fp.raw {
		if err := fp.operands(r); err != nil {
			return fmt.Errorf("line %d: %q: %w", r.line+1, r.text, err)
		}
		// A void result cannot carry a name: the printer drops the
		// "%x = " prefix for void instructions, so a named one would
		// not survive a print/parse round trip.
		if r.in.Name != "" && r.in.Ty == ir.Void {
			return fmt.Errorf("line %d: %q: named result of void type", r.line+1, r.text)
		}
	}
	return nil
}

func (fp *funcParser) header(head string) error {
	// define TYPE @name(params) [attrs] {
	rest := strings.TrimPrefix(head, "define ")
	at := strings.Index(rest, " @")
	if at < 0 {
		return fmt.Errorf("malformed define %q", head)
	}
	retTy, err := parseType(rest[:at])
	if err != nil {
		return err
	}
	rest = rest[at+2:]
	open := strings.Index(rest, "(")
	closeP := strings.LastIndex(rest, ")")
	if open < 0 || closeP < open {
		return fmt.Errorf("malformed parameter list in %q", head)
	}
	name := rest[:open]
	var params []*ir.Arg
	paramsText := rest[open+1 : closeP]
	if strings.TrimSpace(paramsText) != "" {
		for _, ptxt := range strings.Split(paramsText, ",") {
			fields := strings.Fields(strings.TrimSpace(ptxt))
			// TYPE [noalias] %name — vector types contain spaces.
			if len(fields) < 2 {
				return fmt.Errorf("malformed parameter %q", ptxt)
			}
			pname := fields[len(fields)-1]
			if !strings.HasPrefix(pname, "%") {
				return fmt.Errorf("parameter name missing in %q", ptxt)
			}
			noalias := false
			tyFields := fields[:len(fields)-1]
			if tyFields[len(tyFields)-1] == "noalias" {
				noalias = true
				tyFields = tyFields[:len(tyFields)-1]
			}
			ty, err := parseType(strings.Join(tyFields, " "))
			if err != nil {
				return err
			}
			params = append(params, &ir.Arg{Name: strings.TrimPrefix(pname, "%"), Ty: ty, NoAlias: noalias})
		}
	}
	fn, _ := ir.NewFunc(fp.m, name, retTy, params...)
	// NewFunc creates an entry block we will not use: labels drive
	// block creation, so drop it and rebuild from labels.
	fn.Blocks = fn.Blocks[:0]
	fp.fn = fn
	for _, p := range params {
		fp.values["%"+p.Name] = p
	}
	attrTail := strings.TrimSuffix(strings.TrimSpace(rest[closeP+1:]), "{")
	for _, a := range strings.Fields(attrTail) {
		switch a {
		case "kernel":
			fn.Attrs.Kernel = true
		case "outlined":
			fn.Attrs.Outlined = true
		case "readonly":
			fn.Attrs.ReadOnly = true
		case "readnone":
			fn.Attrs.ReadNone = true
		}
	}
	return nil
}

// curLabel tracks the block receiving new instructions.
func (fp *funcParser) getBlock(label string) *ir.Block {
	if b, ok := fp.blocks[label]; ok {
		return b
	}
	b := &ir.Block{Name: label, Parent: fp.fn}
	fp.blocks[label] = b
	fp.fn.Blocks = append(fp.fn.Blocks, b)
	return b
}

// shell creates the instruction object for a body line.
func (fp *funcParser) shell(line string, pos int) error {
	if fp.curLabel == "" {
		return fmt.Errorf("instruction before first label: %q", line)
	}
	b := fp.blocks[fp.curLabel]
	text := line
	resName := ""
	if strings.HasPrefix(text, "%") {
		eq := strings.Index(text, " = ")
		if eq < 0 {
			return fmt.Errorf("malformed definition %q", line)
		}
		resName = text[:eq]
		text = text[eq+3:]
	}
	text, meta := splitMeta(text)
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return fmt.Errorf("missing opcode in %q", line)
	}
	op, ok := opByName(fields[0])
	if !ok {
		return fmt.Errorf("unknown opcode in %q", line)
	}
	in := &ir.Instr{Op: op, Ty: ir.Void, ID: fp.fn.AllocID(), Parent: b}
	if resName != "" {
		in.Name = strings.TrimPrefix(resName, "%")
		fp.values[resName] = in
	}
	b.Instrs = append(b.Instrs, in)
	fp.raw = append(fp.raw, rawInstr{in: in, text: text, meta: meta, line: pos})
	return nil
}

// splitMeta removes the metadata tail (everything from the first " !").
func splitMeta(s string) (string, string) {
	if i := strings.Index(s, " !"); i >= 0 {
		return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i:])
	}
	return strings.TrimSpace(s), ""
}

var opcodeNames = map[string]ir.Opcode{
	"alloca": ir.OpAlloca, "load": ir.OpLoad, "store": ir.OpStore, "gep": ir.OpGEP,
	"memcpy": ir.OpMemCpy, "memset": ir.OpMemSet,
	"add": ir.OpAdd, "sub": ir.OpSub, "mul": ir.OpMul, "sdiv": ir.OpSDiv, "srem": ir.OpSRem,
	"and": ir.OpAnd, "or": ir.OpOr, "xor": ir.OpXor, "shl": ir.OpShl, "ashr": ir.OpAShr,
	"fadd": ir.OpFAdd, "fsub": ir.OpFSub, "fmul": ir.OpFMul, "fdiv": ir.OpFDiv,
	"sitofp": ir.OpSIToFP, "fptosi": ir.OpFPToSI,
	"icmp": ir.OpICmp, "fcmp": ir.OpFCmp,
	"vsplat": ir.OpVSplat, "vextract": ir.OpVExtract, "vinsert": ir.OpVInsert, "vreduce": ir.OpVReduce,
	"select": ir.OpSelect, "phi": ir.OpPhi, "call": ir.OpCall,
	"br": ir.OpBr, "ret": ir.OpRet,
}

func opByName(s string) (ir.Opcode, bool) {
	op, ok := opcodeNames[s]
	return op, ok
}

var predByName = map[string]ir.Pred{
	"eq": ir.PredEQ, "ne": ir.PredNE, "lt": ir.PredLT,
	"le": ir.PredLE, "gt": ir.PredGT, "ge": ir.PredGE,
}

// value resolves an operand token with a type hint for constants.
func (fp *funcParser) value(tok string, hint *ir.Type) (ir.Value, error) {
	tok = strings.TrimSpace(tok)
	switch {
	case strings.HasPrefix(tok, "%"):
		v, ok := fp.values[tok]
		if !ok {
			return nil, fmt.Errorf("undefined value %s", tok)
		}
		return v, nil
	case strings.HasPrefix(tok, "@"):
		g := fp.m.GlobalByName(tok[1:])
		if g == nil {
			return nil, fmt.Errorf("undefined global %s", tok)
		}
		return g, nil
	case strings.HasPrefix(tok, `"`):
		s, _, err := quoted(tok)
		if err != nil {
			return nil, err
		}
		return ir.ConstStr(s), nil
	default:
		// A float-looking token ("3.0", "1e9") is a float constant no
		// matter the positional hint: the printer renders every float
		// constant distinguishably, so the token itself is the type.
		if hint == ir.F64 || hint == ir.V4F64 || looksFloat(tok) {
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("bad float constant %q", tok)
			}
			return ir.ConstFloat(f), nil
		}
		i, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad int constant %q", tok)
		}
		if hint == ir.I1 {
			return ir.ConstBool(i != 0), nil
		}
		return ir.ConstInt(i), nil
	}
}

// splitArgs splits on top-level commas (respecting quotes).
func splitArgs(s string) []string {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '[' || c == '(':
			depth++
		case c == ']' || c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}
