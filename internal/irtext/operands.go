package irtext

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/oraql/go-oraql/internal/ir"
)

// operands fills in one instruction from its stripped text (pass 2).
// Dominance guarantees that every referenced non-phi value was defined
// on an earlier line, and phis carry explicit types, so type inference
// for constants always has a resolved operand or an explicit type to
// lean on.
func (fp *funcParser) operands(r rawInstr) error {
	in := r.in
	text := r.text
	rest := strings.TrimSpace(strings.TrimPrefix(text, in.Op.String()))
	var err error
	switch in.Op {
	case ir.OpAlloca:
		in.Ty = ir.Ptr
		in.Size, err = strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return fmt.Errorf("alloca size: %w", err)
		}

	case ir.OpLoad:
		// load TYPE, PTR
		args := splitArgs(rest)
		if len(args) != 2 {
			return fmt.Errorf("load wants 'TYPE, PTR'")
		}
		in.Ty, err = parseType(args[0])
		if err != nil {
			return err
		}
		ptr, err := fp.value(args[1], ir.Ptr)
		if err != nil {
			return err
		}
		in.Operands = []ir.Value{ptr}

	case ir.OpStore:
		// store TYPE VAL, PTR
		args := splitArgs(rest)
		if len(args) != 2 {
			return fmt.Errorf("store wants 'TYPE VAL, PTR'")
		}
		sp := strings.LastIndex(args[0], " ")
		if sp < 0 {
			return fmt.Errorf("store value missing type")
		}
		vty, err := parseType(args[0][:sp])
		if err != nil {
			return err
		}
		val, err := fp.value(args[0][sp+1:], vty)
		if err != nil {
			return err
		}
		ptr, err := fp.value(args[1], ir.Ptr)
		if err != nil {
			return err
		}
		in.Operands = []ir.Value{val, ptr}

	case ir.OpGEP:
		// gep BASE + IDX*SCALE + OFF   |   gep BASE + OFF
		in.Ty = ir.Ptr
		parts := strings.Split(rest, " + ")
		base, err := fp.value(parts[0], ir.Ptr)
		if err != nil {
			return err
		}
		in.Operands = []ir.Value{base}
		switch len(parts) {
		case 2:
			in.Off, err = strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			if err != nil {
				return fmt.Errorf("gep offset: %w", err)
			}
		case 3:
			star := strings.LastIndex(parts[1], "*")
			if star < 0 {
				return fmt.Errorf("gep index missing scale")
			}
			idx, err := fp.value(parts[1][:star], ir.I64)
			if err != nil {
				return err
			}
			in.Operands = append(in.Operands, idx)
			in.Scale, err = strconv.ParseInt(strings.TrimSpace(parts[1][star+1:]), 10, 64)
			if err != nil {
				return fmt.Errorf("gep scale: %w", err)
			}
			in.Off, err = strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
			if err != nil {
				return fmt.Errorf("gep offset: %w", err)
			}
		default:
			return fmt.Errorf("malformed gep")
		}

	case ir.OpMemCpy:
		// memcpy DST <- SRC, N
		arrow := strings.Index(rest, " <- ")
		if arrow < 0 {
			return fmt.Errorf("malformed memcpy")
		}
		dst, err := fp.value(rest[:arrow], ir.Ptr)
		if err != nil {
			return err
		}
		tail := splitArgs(rest[arrow+4:])
		if len(tail) != 2 {
			return fmt.Errorf("memcpy wants 'SRC, N'")
		}
		src, err := fp.value(tail[0], ir.Ptr)
		if err != nil {
			return err
		}
		n, err := fp.value(tail[1], ir.I64)
		if err != nil {
			return err
		}
		in.Operands = []ir.Value{dst, src, n}

	case ir.OpMemSet:
		args := splitArgs(rest)
		if len(args) != 3 {
			return fmt.Errorf("memset wants 'DST, VAL, N'")
		}
		return fp.resolveList(in, args, []*ir.Type{ir.Ptr, ir.I64, ir.I64}, ir.Void)

	case ir.OpICmp, ir.OpFCmp:
		// icmp PRED a, b
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) < 2 {
			return fmt.Errorf("cmp wants 'PRED a, b'")
		}
		pred, ok := predByName[fields[0]]
		if !ok {
			return fmt.Errorf("unknown predicate %q", fields[0])
		}
		in.Pred = pred
		hint := ir.I64
		if in.Op == ir.OpFCmp {
			hint = ir.F64
		}
		args := splitArgs(fields[1])
		if len(args) != 2 {
			return fmt.Errorf("cmp wants two operands")
		}
		if err := fp.resolveBin(in, args, hint); err != nil {
			return err
		}
		in.Ty = ir.I1

	case ir.OpPhi:
		// phi TYPE [v, %bb], [v, %bb]...
		sp := strings.Index(rest, " ")
		if sp < 0 {
			return fmt.Errorf("phi missing type")
		}
		tyEnd := sp
		if strings.HasPrefix(rest, "<") { // vector type contains a space
			tyEnd = strings.Index(rest, ">") + 1
		}
		in.Ty, err = parseType(rest[:tyEnd])
		if err != nil {
			return err
		}
		for _, inc := range splitArgs(rest[tyEnd:]) {
			inc = strings.TrimSpace(inc)
			if !strings.HasPrefix(inc, "[") || !strings.HasSuffix(inc, "]") {
				return fmt.Errorf("malformed phi incoming %q", inc)
			}
			parts := splitArgs(inc[1 : len(inc)-1])
			if len(parts) != 2 || !strings.HasPrefix(parts[1], "%") {
				return fmt.Errorf("malformed phi incoming %q", inc)
			}
			v, err := fp.value(parts[0], in.Ty)
			if err != nil {
				return err
			}
			blk, ok := fp.blocks[strings.TrimPrefix(parts[1], "%")]
			if !ok {
				return fmt.Errorf("phi references unknown block %q", parts[1])
			}
			in.Operands = append(in.Operands, v)
			in.Incoming = append(in.Incoming, blk)
		}

	case ir.OpCall:
		// call TYPE @name(args)
		at := strings.Index(rest, "@")
		open := strings.Index(rest, "(")
		if at < 0 || open < at || !strings.HasSuffix(rest, ")") {
			return fmt.Errorf("malformed call")
		}
		in.Ty, err = parseType(strings.TrimSpace(rest[:at]))
		if err != nil {
			return err
		}
		in.Callee = rest[at+1 : open]
		callee := fp.m.FuncByName(in.Callee)
		intrTypes := intrinsicParamTypes[in.Callee]
		for i, a := range splitArgs(rest[open+1 : len(rest)-1]) {
			hint := ir.I64
			if callee != nil && i < len(callee.Params) {
				hint = callee.Params[i].Ty
			} else if i < len(intrTypes) {
				hint = intrTypes[i]
			} else if looksFloat(a) {
				hint = ir.F64
			}
			v, err := fp.value(a, hint)
			if err != nil {
				return err
			}
			in.Operands = append(in.Operands, v)
		}

	case ir.OpBr:
		args := splitArgs(rest)
		switch len(args) {
		case 1:
			blk, ok := fp.blocks[strings.TrimPrefix(args[0], "%")]
			if !ok {
				return fmt.Errorf("br to unknown block %q", args[0])
			}
			in.Succs = []*ir.Block{blk}
		case 3:
			cond, err := fp.value(args[0], ir.I1)
			if err != nil {
				return err
			}
			t, ok1 := fp.blocks[strings.TrimPrefix(args[1], "%")]
			e, ok2 := fp.blocks[strings.TrimPrefix(args[2], "%")]
			if !ok1 || !ok2 {
				return fmt.Errorf("br to unknown block")
			}
			in.Operands = []ir.Value{cond}
			in.Succs = []*ir.Block{t, e}
		default:
			return fmt.Errorf("malformed br")
		}

	case ir.OpRet:
		if rest != "void" && rest != "" {
			hint := fp.fn.RetTy
			v, err := fp.value(rest, hint)
			if err != nil {
				return err
			}
			in.Operands = []ir.Value{v}
		}

	case ir.OpSIToFP:
		v, err := fp.valueInferred(rest, ir.I64)
		if err != nil {
			return err
		}
		in.Operands = []ir.Value{v}
		in.Ty = ir.F64
		if v.Type().Kind == ir.KVec {
			in.Ty = ir.V4F64
		}

	case ir.OpFPToSI:
		v, err := fp.valueInferred(rest, ir.F64)
		if err != nil {
			return err
		}
		in.Operands = []ir.Value{v}
		in.Ty = ir.I64
		if v.Type().Kind == ir.KVec {
			in.Ty = ir.V4I64
		}

	case ir.OpSelect:
		args := splitArgs(rest)
		if len(args) != 3 {
			return fmt.Errorf("select wants three operands")
		}
		cond, err := fp.value(args[0], ir.I1)
		if err != nil {
			return err
		}
		if err := fp.resolveBin(in, args[1:], ir.I64); err != nil {
			return err
		}
		in.Operands = append([]ir.Value{cond}, in.Operands...)
		in.Ty = in.Operands[1].Type()

	case ir.OpVSplat:
		// Constant splats carry their element type in the token itself
		// ("vsplat 3" is an i64 splat, "vsplat 3.0" a double one); %refs
		// resolve by lookup, so the hint only decides bare constants.
		hint := ir.F64
		if t := strings.TrimSpace(rest); !strings.HasPrefix(t, "%") && !looksFloat(t) {
			hint = ir.I64
		}
		v, err := fp.valueInferred(rest, hint)
		if err != nil {
			return err
		}
		in.Operands = []ir.Value{v}
		in.Ty = ir.VecType(scalarOf(v.Type()), 4)

	case ir.OpVExtract:
		args := splitArgs(rest)
		if len(args) != 2 {
			return fmt.Errorf("vextract wants 'VEC, LANE'")
		}
		vec, err := fp.value(args[0], ir.V4F64)
		if err != nil {
			return err
		}
		lane, err := fp.value(args[1], ir.I64)
		if err != nil {
			return err
		}
		in.Operands = []ir.Value{vec, lane}
		in.Ty = vec.Type().Elem

	case ir.OpVInsert:
		args := splitArgs(rest)
		if len(args) != 3 {
			return fmt.Errorf("vinsert wants 'VEC, VAL, LANE'")
		}
		vec, err := fp.value(args[0], ir.V4F64)
		if err != nil {
			return err
		}
		val, err := fp.value(args[1], scalarOf(vec.Type()))
		if err != nil {
			return err
		}
		lane, err := fp.value(args[2], ir.I64)
		if err != nil {
			return err
		}
		in.Operands = []ir.Value{vec, val, lane}
		in.Ty = vec.Type()

	case ir.OpVReduce:
		v, err := fp.valueInferred(rest, ir.V4F64)
		if err != nil {
			return err
		}
		in.Operands = []ir.Value{v}
		in.Ty = v.Type().Elem

	default: // binary arithmetic
		hint := ir.I64
		switch in.Op {
		case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
			hint = ir.F64
		}
		args := splitArgs(rest)
		if len(args) != 2 {
			return fmt.Errorf("binary op wants two operands")
		}
		if err := fp.resolveBin(in, args, hint); err != nil {
			return err
		}
		in.Ty = in.Operands[0].Type()
		if in.Ty == ir.Void || in.Ty == ir.Ptr {
			// Pointer-typed operand in arithmetic cannot happen; Void
			// means both were constants — fall back to the hint.
			in.Ty = hint
		}
		// Constants next to a typed operand adopt its type family.
		if in.Operands[0].Type().Kind == ir.KVec || in.Operands[1].Type().Kind == ir.KVec {
			for i, op := range in.Operands {
				if op.Type().Kind != ir.KVec {
					_ = i // scalar-with-vector never printed; defensive only
				}
			}
			in.Ty = in.Operands[0].Type()
		}
	}
	return fp.metadata(in, r.meta)
}

// resolveBin resolves two operand tokens, preferring a referenced
// value's type as the constant hint.
func (fp *funcParser) resolveBin(in *ir.Instr, args []string, hint *ir.Type) error {
	ty := hint
	for _, a := range args {
		a = strings.TrimSpace(a)
		if strings.HasPrefix(a, "%") || strings.HasPrefix(a, "@") {
			v, err := fp.value(a, hint)
			if err != nil {
				return err
			}
			if v.Type() != ir.Void {
				ty = v.Type()
				break
			}
		}
	}
	for _, a := range args {
		v, err := fp.value(a, ty)
		if err != nil {
			return err
		}
		in.Operands = append(in.Operands, v)
	}
	return nil
}

// resolveList resolves tokens against per-position type hints.
func (fp *funcParser) resolveList(in *ir.Instr, args []string, hints []*ir.Type, resTy *ir.Type) error {
	for i, a := range args {
		v, err := fp.value(a, hints[i])
		if err != nil {
			return err
		}
		in.Operands = append(in.Operands, v)
	}
	in.Ty = resTy
	return nil
}

// valueInferred resolves a single token, using the referenced value's
// own type when available.
func (fp *funcParser) valueInferred(tok string, hint *ir.Type) (ir.Value, error) {
	return fp.value(tok, hint)
}

// intrinsicParamTypes gives constant-type hints for the float-bearing
// intrinsics (other positions default to i64; quoted strings and %refs
// are unaffected).
var intrinsicParamTypes = map[string][]*ir.Type{
	"__print_f64":         {ir.F64},
	"__sqrt":              {ir.F64},
	"__fabs":              {ir.F64},
	"__exp":               {ir.F64},
	"__log":               {ir.F64},
	"__sin":               {ir.F64},
	"__cos":               {ir.F64},
	"__pow":               {ir.F64, ir.F64},
	"__min_f64":           {ir.F64, ir.F64},
	"__max_f64":           {ir.F64, ir.F64},
	"__mpi_allreduce_f64": {ir.F64},
}

// looksFloat sniffs a numeric token for a decimal point or exponent.
func looksFloat(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" || strings.HasPrefix(s, "%") || strings.HasPrefix(s, "@") || strings.HasPrefix(s, `"`) {
		return false
	}
	return strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, `"`)
}

func scalarOf(t *ir.Type) *ir.Type {
	if t.Kind == ir.KVec {
		return t.Elem
	}
	return t
}

// metadata parses the instruction's metadata tail.
func (fp *funcParser) metadata(in *ir.Instr, meta string) error {
	s := strings.TrimSpace(meta)
	for s != "" {
		switch {
		case strings.HasPrefix(s, "!tbaa "):
			tag, rest, err := quoted(strings.TrimPrefix(s, "!tbaa "))
			if err != nil {
				return err
			}
			in.TBAA = tag
			s = strings.TrimSpace(rest)
		case strings.HasPrefix(s, "!alias.scope ["):
			list, rest, err := bracketList(strings.TrimPrefix(s, "!alias.scope "))
			if err != nil {
				return err
			}
			in.Scopes = list
			s = rest
		case strings.HasPrefix(s, "!noalias ["):
			list, rest, err := bracketList(strings.TrimPrefix(s, "!noalias "))
			if err != nil {
				return err
			}
			in.NoAliasScope = list
			s = rest
		case strings.HasPrefix(s, "!dbg "):
			loc := strings.TrimPrefix(s, "!dbg ")
			end := strings.Index(loc, " !")
			rest := ""
			if end >= 0 {
				rest = loc[end:]
				loc = loc[:end]
			}
			parts := strings.Split(loc, ":")
			if len(parts) < 3 {
				return fmt.Errorf("malformed !dbg %q", loc)
			}
			line, err1 := strconv.Atoi(parts[len(parts)-2])
			col, err2 := strconv.Atoi(parts[len(parts)-1])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("malformed !dbg %q", loc)
			}
			in.Loc = ir.SrcLoc{File: strings.Join(parts[:len(parts)-2], ":"), Line: line, Col: col}
			s = strings.TrimSpace(rest)
		default:
			return fmt.Errorf("unknown metadata %q", s)
		}
	}
	return nil
}

// bracketList parses "[a b c]" into its space-separated elements.
func bracketList(s string) ([]string, string, error) {
	if !strings.HasPrefix(s, "[") {
		return nil, s, fmt.Errorf("expected '[' in %q", s)
	}
	end := strings.Index(s, "]")
	if end < 0 {
		return nil, s, fmt.Errorf("unterminated list in %q", s)
	}
	return strings.Fields(s[1:end]), strings.TrimSpace(s[end+1:]), nil
}
