package irtext_test

import (
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/irtext"
	"github.com/oraql/go-oraql/internal/minic"
)

// FuzzIRTextRoundtrip is the native fuzz target for the textual IR
// format: for any input that parses, printing the module and parsing
// it back must be a fixpoint. Inputs that do not parse are skipped —
// the target hunts for parser crashes and print/parse asymmetries,
// not for a total grammar.
func FuzzIRTextRoundtrip(f *testing.F) {
	// Seed with real frontend output so mutation starts from
	// well-formed modules (the checked-in corpus under testdata/fuzz
	// adds hand-written edge cases on top).
	const prog = `int main() {
	double a[4];
	double* restrict p = a + 1;
	for (int i = 0; i < 4; i++) { a[i] = (double)i; }
	p[0] = a[2] + 1.5;
	print("s ", checksum(a, 4), "\n");
	return 0;
}
`
	host, _, err := minic.Compile("seed.mc", prog, minic.Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(host.String())
	f.Add("")
	f.Add("define void @f() {\nentry:\n  ret\n}\n")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip()
		}
		m, err := irtext.Parse(src)
		if err != nil {
			t.Skip()
		}
		txt := m.String()
		m2, err := irtext.Parse(txt)
		if err != nil {
			t.Fatalf("printed module does not reparse: %v\n%s", err, txt)
		}
		again := m2.String()
		if again != txt {
			t.Fatalf("print->parse->print is not a fixpoint:\nfirst diff at %s", firstDiff(txt, again))
		}
	})
}

// FuzzParseNoPanic feeds raw bytes at the parser: any input may be
// rejected, but none may panic or hang.
func FuzzParseNoPanic(f *testing.F) {
	f.Add("define i64 @main() {")
	f.Add("%x = add i64 1, 2")
	f.Add("global @g = [8 x double]")
	f.Add(strings.Repeat("(", 64))
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip()
		}
		m, err := irtext.Parse(src)
		_ = m
		_ = err
	})
}
