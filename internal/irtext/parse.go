// Package irtext parses the textual IR form produced by
// ir.Module.String, enabling opt-style workflows on .ir files and
// print→parse round-trip testing. The grammar is exactly the printer's
// output language:
//
//	; module NAME target=TARGET
//	!tbaa.tag "tag" parent "parent"
//	@name = global [N bytes] [const] [internal] [init.i64 {..}] [init.f64 {..}]
//	define TYPE @name(TYPE [noalias] %p, ...) [attrs] {
//	label:
//	  %x = op operands... [!tbaa "t"] [!dbg file:line:col]
//	  ...
//	}
package irtext

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/oraql/go-oraql/internal/ir"
)

// Parse reads a module from its textual form.
func Parse(src string) (*ir.Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m, err := p.module()
	if err != nil {
		return nil, fmt.Errorf("irtext: line %d: %w", p.pos+1, err)
	}
	if err := ir.Verify(m); err != nil {
		return nil, fmt.Errorf("irtext: parsed module does not verify: %w", err)
	}
	return m, nil
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) cur() (string, bool) {
	for p.pos < len(p.lines) {
		l := strings.TrimSpace(p.lines[p.pos])
		if l == "" {
			p.pos++
			continue
		}
		return l, true
	}
	return "", false
}

func (p *parser) advance() { p.pos++ }

func (p *parser) module() (*ir.Module, error) {
	head, ok := p.cur()
	if !ok || !strings.HasPrefix(head, "; module ") {
		return nil, fmt.Errorf("expected '; module NAME target=...' header")
	}
	rest := strings.TrimPrefix(head, "; module ")
	fields := strings.Fields(rest)
	if len(fields) < 2 || !strings.HasPrefix(fields[len(fields)-1], "target=") {
		return nil, fmt.Errorf("malformed module header %q", head)
	}
	m := ir.NewModule(strings.Join(fields[:len(fields)-1], " "))
	m.Target = strings.TrimPrefix(fields[len(fields)-1], "target=")
	p.advance()

	// Collect globals, TBAA tags, and function extents; function
	// headers are parsed before any body so forward calls resolve.
	type fnExtent struct {
		head       string
		start, end int // body line range [start, end)
	}
	var fns []fnExtent
	for {
		line, ok := p.cur()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, "!tbaa.tag "):
			if err := p.tbaaTag(m, line); err != nil {
				return nil, err
			}
			p.advance()
		case strings.HasPrefix(line, "@"):
			if err := p.global(m, line); err != nil {
				return nil, err
			}
			p.advance()
		case strings.HasPrefix(line, "define "):
			ext := fnExtent{head: line}
			p.advance()
			ext.start = p.pos
			for {
				l, ok := p.cur()
				if !ok {
					return nil, fmt.Errorf("unterminated function in %q", line)
				}
				if l == "}" {
					ext.end = p.pos
					p.advance()
					break
				}
				p.advance()
			}
			fns = append(fns, ext)
		case strings.HasPrefix(line, ";"):
			p.advance()
		default:
			return nil, fmt.Errorf("unexpected top-level line %q", line)
		}
	}
	// Pass 1: headers.
	parsers := make([]*funcParser, len(fns))
	for i, ext := range fns {
		fp := &funcParser{m: m, values: map[string]ir.Value{}, blocks: map[string]*ir.Block{}}
		if err := fp.header(ext.head); err != nil {
			return nil, err
		}
		parsers[i] = fp
	}
	// Pass 2: bodies.
	for i, ext := range fns {
		if err := parsers[i].body(p.lines[ext.start:ext.end], ext.start); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (p *parser) tbaaTag(m *ir.Module, line string) error {
	rest := strings.TrimPrefix(line, "!tbaa.tag ")
	tag, rest, err := quoted(rest)
	if err != nil {
		return fmt.Errorf("tbaa.tag: %w", err)
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "parent ") {
		return fmt.Errorf("tbaa.tag: missing parent in %q", line)
	}
	parent, _, err := quoted(strings.TrimPrefix(rest, "parent "))
	if err != nil {
		return fmt.Errorf("tbaa.tag parent: %w", err)
	}
	if !m.TBAA.Has(tag) {
		m.TBAA.Add(tag, parent)
	}
	return nil
}

// quoted consumes a leading Go-quoted string.
func quoted(s string) (string, string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, `"`) {
		return "", s, fmt.Errorf("expected quoted string in %q", s)
	}
	end := 1
	for end < len(s) {
		if s[end] == '\\' {
			end += 2
			continue
		}
		if s[end] == '"' {
			break
		}
		end++
	}
	if end >= len(s) {
		return "", s, fmt.Errorf("unterminated string in %q", s)
	}
	val, err := strconv.Unquote(s[:end+1])
	if err != nil {
		return "", s, err
	}
	return val, s[end+1:], nil
}

func (p *parser) global(m *ir.Module, line string) error {
	// @name = global [N bytes] [const] [internal] [init.i64 {..}] [init.f64 {..}]
	eq := strings.Index(line, " = global [")
	if eq < 0 {
		return fmt.Errorf("malformed global %q", line)
	}
	g := &ir.Global{Name: line[1:eq]}
	rest := line[eq+len(" = global ["):]
	close1 := strings.Index(rest, " bytes]")
	if close1 < 0 {
		return fmt.Errorf("malformed global size in %q", line)
	}
	size, err := strconv.ParseInt(rest[:close1], 10, 64)
	if err != nil {
		return fmt.Errorf("global size: %w", err)
	}
	g.Size = size
	rest = rest[close1+len(" bytes]"):]
	g.Const = strings.Contains(rest, " const")
	g.Internal = strings.Contains(rest, " internal")
	if i := strings.Index(rest, "init.i64 {"); i >= 0 {
		vals, err := intList(rest[i+len("init.i64 {"):])
		if err != nil {
			return err
		}
		g.InitI64 = vals
	}
	if i := strings.Index(rest, "init.f64 {"); i >= 0 {
		vals, err := floatList(rest[i+len("init.f64 {"):])
		if err != nil {
			return err
		}
		g.InitF64 = vals
	}
	m.AddGlobal(g)
	return nil
}

func intList(s string) ([]int64, error) {
	end := strings.Index(s, "}")
	if end < 0 {
		return nil, fmt.Errorf("unterminated init list")
	}
	var out []int64
	for _, f := range strings.Split(s[:end], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func floatList(s string) ([]float64, error) {
	end := strings.Index(s, "}")
	if end < 0 {
		return nil, fmt.Errorf("unterminated init list")
	}
	var out []float64
	for _, f := range strings.Split(s[:end], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseType(s string) (*ir.Type, error) {
	switch s {
	case "void":
		return ir.Void, nil
	case "i1":
		return ir.I1, nil
	case "i64":
		return ir.I64, nil
	case "double":
		return ir.F64, nil
	case "ptr":
		return ir.Ptr, nil
	case "<4 x double>":
		return ir.V4F64, nil
	case "<4 x i64>":
		return ir.V4I64, nil
	}
	return nil, fmt.Errorf("unknown type %q", s)
}
