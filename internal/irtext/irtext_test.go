package irtext_test

import (
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/irinterp"
	"github.com/oraql/go-oraql/internal/irtext"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/pipeline"
)

// TestRoundTripAllApps prints every benchmark's modules (both the
// frontend output and the optimized form), parses them back, and
// checks (a) print→parse→print is a fixpoint and (b) the reparsed
// module behaves identically on the simulated machine.
func TestRoundTripAllApps(t *testing.T) {
	for _, cfg := range apps.All() {
		cfg := cfg
		t.Run(cfg.ID, func(t *testing.T) {
			// Frontend output.
			host, dev, err := minic.Compile(cfg.SourceName, cfg.Source, cfg.Frontend)
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, cfg, host, dev)

			// Optimized output.
			cr, err := pipeline.Compile(pipeline.Config{
				Name: cfg.ID, Source: cfg.Source, SourceFile: cfg.SourceName, Frontend: cfg.Frontend,
			})
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, cfg, cr.Program.Host, cr.Program.Device)
		})
	}
}

func roundTrip(t *testing.T, cfg *apps.Config, host, dev *ir.Module) {
	t.Helper()
	hostTxt := host.String()
	host2, err := irtext.Parse(hostTxt)
	if err != nil {
		t.Fatalf("parse host: %v", err)
	}
	if again := host2.String(); again != hostTxt {
		t.Fatalf("print->parse->print is not a fixpoint:\nfirst diff at %s", firstDiff(hostTxt, again))
	}
	prog := &irinterp.Program{Host: host2}
	if dev != nil {
		devTxt := dev.String()
		dev2, err := irtext.Parse(devTxt)
		if err != nil {
			t.Fatalf("parse device: %v", err)
		}
		if again := dev2.String(); again != devTxt {
			t.Fatalf("device round-trip mismatch at %s", firstDiff(devTxt, again))
		}
		prog.Device = dev2
	}
	res, err := irinterp.Run(prog, cfg.Run)
	if err != nil {
		t.Fatalf("reparsed program run: %v", err)
	}
	if res.Stdout == "" {
		t.Fatal("reparsed program produced no output")
	}
}

func firstDiff(a, b string) string {
	al := strings.Split(a, "\n")
	bl := strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + itoa(i+1) + ":\n  a: " + al[i] + "\n  b: " + bl[i]
		}
	}
	return "length mismatch"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [16]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestSemanticEquivalenceAfterReparse compares interpreter output of
// the original and reparsed optimized modules for one configuration.
func TestSemanticEquivalenceAfterReparse(t *testing.T) {
	cfg := apps.ByID("lulesh-seq")
	cr, err := pipeline.Compile(pipeline.Config{
		Name: cfg.ID, Source: cfg.Source, SourceFile: cfg.SourceName, Frontend: cfg.Frontend,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := irinterp.Run(cr.Program, cfg.Run)
	if err != nil {
		t.Fatal(err)
	}
	host2, err := irtext.Parse(cr.Program.Host.String())
	if err != nil {
		t.Fatal(err)
	}
	got, err := irinterp.Run(&irinterp.Program{Host: host2}, cfg.Run)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stdout != ref.Stdout {
		t.Fatalf("reparsed module diverges:\n ref: %q\n got: %q", ref.Stdout, got.Stdout)
	}
	if got.Instrs != ref.Instrs {
		t.Errorf("instruction counts differ: %d vs %d", ref.Instrs, got.Instrs)
	}
}

// TestParserErrors checks diagnostics on malformed input.
func TestParserErrors(t *testing.T) {
	cases := []string{
		"",                              // no header
		"; module x target=t\n@g = bad", // malformed global
		"; module x target=t\ndefine void @f() {\nentry:\n  bogus 1\n}\n",                             // unknown op
		"; module x target=t\ndefine void @f() {\nentry:\n  ret void\n",                               // unterminated
		"; module x target=t\ndefine void @f() {\nentry:\n  %x = load i64, %missing\n  ret void\n}\n", // undefined value
	}
	for _, src := range cases {
		if _, err := irtext.Parse(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}
