package irtext

import (
	"fmt"
	"strings"

	"github.com/oraql/go-oraql/internal/ir"
)

// ParseFuncInto parses the textual form of one function (a single
// "define ... { ... }" extent, as printed by ir.Func.String) against
// an existing module, resolving globals and TBAA tags from it. The
// parsed function is returned detached: it references m (its globals,
// its parent pointer) but is NOT in m.Funcs — the caller decides
// whether to swap it over an existing function or append it.
//
// This is the disk-cache load path: a persisted optimized body is
// re-materialized against the module it was compiled in.
func ParseFuncInto(m *ir.Module, src string) (*ir.Func, error) {
	lines := strings.Split(src, "\n")
	head := -1
	end := -1
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		switch {
		case head < 0 && strings.HasPrefix(line, "define "):
			head = i
		case head >= 0 && line == "}":
			end = i
		}
	}
	if head < 0 || end <= head {
		return nil, fmt.Errorf("irtext: no 'define ... { ... }' extent in function text")
	}
	fp := &funcParser{m: m, values: map[string]ir.Value{}, blocks: map[string]*ir.Block{}}
	if err := fp.header(strings.TrimSpace(lines[head])); err != nil {
		return nil, fmt.Errorf("irtext: %w", err)
	}
	// header appended the function to m.Funcs (NewFunc's module
	// registration); detach it again — the caller owns placement.
	m.Funcs = m.Funcs[:len(m.Funcs)-1]
	if err := fp.body(lines[head+1:end], head+1); err != nil {
		return nil, fmt.Errorf("irtext: %w", err)
	}
	return fp.fn, nil
}

// ReplaceFunc swaps new over the function at m.Funcs[i], preserving
// the slot's identity (ID and module order). Calls link by name, so
// call sites in other functions resolve to the replacement through
// Module.FuncByName.
func ReplaceFunc(m *ir.Module, i int, newFn *ir.Func) {
	newFn.ID = m.Funcs[i].ID
	newFn.Parent = m
	m.Funcs[i] = newFn
}
