package goraql

// Strategy conformance: for every strategy that decides queries left
// to right — chunked, bayes, linear, and script-defined strategies
// built the same way — a singleton conviction test always runs in the
// same context (final decided prefix, pessimistic suffix), so the
// conviction set and the final executable are properties of the
// program, not of where the bisection splits. The suite pins that:
// identical conviction sets and byte-identical exe hashes across the
// whole prefix-context family, at any worker count. This is the
// contract that lets -strategy, scripted strategies, and the bench
// matrix interchange those strategies freely: they trade compile
// counts, never verdicts.
//
// The freq strategy is the deliberate exception: its residue-class
// candidates scatter optimistic bits across the sequence, and the
// verification oracle is context-sensitive (pass interactions such as
// Early CSE fire differently under different optimistic contexts), so
// freq legitimately convicts a superset. For it the suite asserts
// exactly that — every chunked conviction is covered, and the outcome
// is identical across worker counts.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/campaign"
	"github.com/oraql/go-oraql/internal/driver"
	"github.com/oraql/go-oraql/internal/registry"
)

// conformanceConfigs pins the configurations the suite runs: apps
// with multiple convictions, a single conviction, and none at all.
var conformanceConfigs = []string{
	"lulesh-seq",      // two convictions
	"minife-openmp",   // one conviction
	"testsnap-openmp", // two convictions, OpenMP outlining
	"xsbench-seq",     // two convictions in one function
	"minigmg-sse",     // fully optimistic
}

// scriptedLinear is the .oraql-defined member of the conformance set:
// a linear left-to-right strategy written against the probe_* prober
// bindings and registered with register_strategy.
const scriptedLinear = `
register_strategy("scripted-linear", fn(n) {
  let decided = []
  for i in range(n) {
    decided = append(decided, false)
  }
  for i in range(n) {
    let cand = []
    for j in range(n) {
      if j == i {
        cand = append(cand, true)
      } else {
        cand = append(cand, decided[j])
      }
    }
    if probe_test(probe_pad(cand)) {
      decided[i] = true
    }
  }
  return decided
})
let res = probe({config: %q, strategy: "scripted-linear", workers: %d})
return {exe: res.exe_hash, guilty: res.guilty_queries}
`

// probeOutcome is the conformance fingerprint of one probe run.
type probeOutcome struct {
	exe    string
	guilty []string // sorted "pass|func|a|b" descriptors
}

func driverOutcome(t *testing.T, cfg *apps.Config, strat driver.Strategy, workers int) probeOutcome {
	t.Helper()
	spec := cfg.Spec()
	spec.Strategy = strat
	spec.Workers = workers
	res, err := driver.Probe(spec)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", strat.Name(), workers, err)
	}
	var guilty []string
	for _, rec := range res.GuiltyQueries() {
		a, b := rec.LocDescriptions()
		guilty = append(guilty, fmt.Sprintf("%s|%s|%s|%s", rec.Pass, rec.Func, a, b))
	}
	sort.Strings(guilty)
	return probeOutcome{exe: res.Final.Compile.ExeHash(), guilty: guilty}
}

func scriptOutcome(t *testing.T, cfgID string, workers int) probeOutcome {
	t.Helper()
	var out bytes.Buffer
	res, err := campaign.Run(fmt.Sprintf(scriptedLinear, cfgID, workers), campaign.Options{Out: &out})
	if err != nil {
		t.Fatalf("scripted-linear workers=%d: %v\n%s", workers, err, out.String())
	}
	m, ok := res.Value.(map[string]any)
	if !ok {
		t.Fatalf("script returned %T, want map", res.Value)
	}
	o := probeOutcome{exe: m["exe"].(string)}
	if gl, ok := m["guilty"].([]any); ok {
		for _, g := range gl {
			q := g.(map[string]any)
			o.guilty = append(o.guilty, fmt.Sprintf("%s|%s|%s|%s", q["pass"], q["func"], q["a"], q["b"]))
		}
	}
	sort.Strings(o.guilty)
	return o
}

func TestStrategyConformance(t *testing.T) {
	for _, id := range conformanceConfigs {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			cfg := apps.ByID(id)
			if cfg == nil {
				t.Fatalf("unknown pinned configuration %q", id)
			}
			ref := driverOutcome(t, cfg, driver.Chunked, 1)
			t.Logf("reference: %d convictions, exe %s", len(ref.guilty), ref.exe[:12])

			check := func(name string, got probeOutcome) {
				if strings.Join(got.guilty, "\n") != strings.Join(ref.guilty, "\n") {
					t.Errorf("%s: conviction set differs from chunked/1:\n got: %v\nwant: %v",
						name, got.guilty, ref.guilty)
				}
				if got.exe != ref.exe {
					t.Errorf("%s: exe hash %s differs from chunked/1 %s", name, got.exe, ref.exe)
				}
			}

			for _, e := range registry.Strategies.Entries() {
				strat := e.Value.(driver.Strategy)
				if strat.Name() == "freq" {
					// Different context family: superset coverage and
					// worker-count determinism instead of identity.
					one := driverOutcome(t, cfg, strat, 1)
					covered := map[string]bool{}
					for _, g := range one.guilty {
						covered[g] = true
					}
					for _, g := range ref.guilty {
						if !covered[g] {
							t.Errorf("freq/1 misses chunked conviction %s", g)
						}
					}
					eight := driverOutcome(t, cfg, strat, 8)
					if eight.exe != one.exe || strings.Join(eight.guilty, "\n") != strings.Join(one.guilty, "\n") {
						t.Errorf("freq outcome differs between workers 1 and 8")
					}
					continue
				}
				for _, workers := range []int{1, 8} {
					if strat == driver.Chunked && workers == 1 {
						continue // the reference itself
					}
					check(fmt.Sprintf("%s/%d", strat.Name(), workers),
						driverOutcome(t, cfg, strat, workers))
				}
			}
			for _, workers := range []int{1, 8} {
				check(fmt.Sprintf("scripted-linear/%d", workers), scriptOutcome(t, id, workers))
			}
		})
	}
}
