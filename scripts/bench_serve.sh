#!/bin/sh
# Records the oraql-serve /v1/compile throughput/latency baseline into
# BENCH_serve.json: requests per second and p50/p99 latency at 1, 4,
# and 16 concurrent clients, cold cache (every request compiles a
# distinct program) vs warm cache (every request hits the
# cross-request result cache). Run from the repo root:
#
#   scripts/bench_serve.sh [count]
set -eu
count="${1:-3}"
out="BENCH_serve.json"

go test -run '^$' -bench Serve_Compile -benchtime=1x \
	-count="$count" . | tee /tmp/bench_serve.txt

awk -v ncpu="$(nproc 2>/dev/null || echo 1)" '
/^BenchmarkServe_Compile\// {
	split($1, parts, "/")
	sub(/-[0-9]+$/, "", parts[2]) # strip the GOMAXPROCS suffix
	name = parts[2]
	n[name]++
	for (i = 3; i < NF; i += 2) {
		if ($(i+1) == "p50-ms") p50[name] += $i
		if ($(i+1) == "p99-ms") p99[name] += $i
		if ($(i+1) == "req/s")  rps[name] += $i
	}
	order[name] = 1
}
END {
	printf "{\n"
	printf "  \"endpoint\": \"/v1/compile\",\n"
	printf "  \"requests_per_client\": 8,\n"
	printf "  \"cpus\": %d,\n", ncpu
	m = split("c1_cold c1_warm c4_cold c4_warm c16_cold c16_warm", keys, " ")
	sep = ""
	for (k = 1; k <= m; k++) {
		name = keys[k]
		if (!(name in order)) continue
		printf "%s  \"%s\": {\n", sep, name
		printf "    \"req_per_s\": %.1f,\n", rps[name] / n[name]
		printf "    \"p50_ms\": %.3f,\n", p50[name] / n[name]
		printf "    \"p99_ms\": %.3f\n", p99[name] / n[name]
		printf "  }"
		sep = ",\n"
	}
	printf "\n}\n"
}' /tmp/bench_serve.txt > "$out"
echo "wrote $out"
