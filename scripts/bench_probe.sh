#!/bin/sh
# Records the probing benchmarks into BENCH_probe.json:
#
#   - sequential vs parallel driver: wall clock per workflow sweep,
#     speculation counts, and the alias-query cache hit rate;
#   - the strategy matrix: chunked / freq / bayes, cold and seeded
#     (a prior chunked campaign populated a disk cache), per app
#     configuration, with compile counts and conviction counts.
#
# Run from the repo root:
#
#   scripts/bench_probe.sh [count]
#
# On a single-core machine the parallel driver cannot overlap its
# speculative tests, so expect parallel >= sequential there; the >=2x
# speedup target is for multi-core hosts.
#
# The script fails if seeded bayes does not beat BOTH cold chunked and
# cold freq on compiles and wall clock on every configuration, or if a
# prefix-context strategy's conviction count diverges from chunked —
# the headline claims the matrix exists to pin.
set -eu
count="${1:-3}"
out="BENCH_probe.json"

go test -run '^$' -bench 'Probe_(Sequential|Parallel)' -benchtime=1x \
	-count="$count" . | tee /tmp/bench_probe.txt
# The matrix averages wall clock over $count iterations per cell —
# single-shot timings on small configurations are too noisy for the
# strict win check below.
go test -run '^$' -bench 'Probe_StrategyMatrix' -benchtime="${count}x" \
	-count=1 . | tee -a /tmp/bench_probe.txt

awk -v ncpu="$(nproc 2>/dev/null || echo 1)" '
/^BenchmarkProbe_(Sequential|Parallel)/ {
	name = ($1 ~ /Sequential/) ? "sequential" : "parallel"
	ns[name] += $3; n[name]++
	for (i = 5; i < NF; i += 2) {
		if ($(i+1) == "aa-cache-hit-%") hit[name] = $i
		if ($(i+1) == "compiles") comp[name] = $i
		if ($(i+1) == "tests-speculated") spec[name] = $i
		if ($(i+1) == "tests-wasted") waste[name] = $i
	}
}
/^BenchmarkProbe_StrategyMatrix\// {
	split($1, parts, "/")
	strat = parts[2]; mode = parts[3]; cfg = parts[4]
	sub(/-[0-9]+$/, "", cfg)
	key = strat SUBSEP mode SUBSEP cfg
	mms[key] = $3 / 1e6
	for (i = 5; i < NF; i += 2) {
		if ($(i+1) == "compiles") mcomp[key] = $i
		if ($(i+1) == "convictions") mconv[key] = $i
	}
	if (!(cfg in seen)) { seen[cfg] = ++ncfg; cfgs[ncfg] = cfg }
}
END {
	printf "{\n"
	printf "  \"suite\": [\"lulesh-seq\", \"testsnap-openmp\", \"minigmg-sse\", \"quicksilver-openmp\"],\n"
	printf "  \"cpus\": %d,\n", ncpu
	for (name in ns) {
		printf "  \"%s\": {\n", name
		printf "    \"wall_clock_ms\": %.1f,\n", ns[name] / n[name] / 1e6
		printf "    \"compiles\": %d,\n", comp[name]
		printf "    \"tests_speculated\": %d,\n", spec[name]
		printf "    \"tests_wasted\": %d,\n", waste[name]
		printf "    \"aa_cache_hit_pct\": %.2f\n", hit[name]
		printf "  },\n"
	}
	printf "  \"strategy_matrix\": {\n"
	printf "    \"workers\": 1,\n"
	printf "    \"seeding\": \"one chunked campaign against a fresh disk cache, excluded from timing\",\n"
	printf "    \"rows\": [\n"
	nstrat = split("chunked freq bayes", strats, " ")
	sep = ""
	bad = 0
	for (s = 1; s <= nstrat; s++) {
		for (m = 1; m <= 2; m++) {
			mode = (m == 1) ? "cold" : "seeded"
			for (c = 1; c <= ncfg; c++) {
				key = strats[s] SUBSEP mode SUBSEP cfgs[c]
				if (!(key in mcomp)) continue
				printf "%s      {\"strategy\": \"%s\", \"mode\": \"%s\", \"config\": \"%s\", ", \
					sep, strats[s], mode, cfgs[c]
				printf "\"wall_ms\": %.1f, \"compiles\": %d, \"convictions\": %d}", \
					mms[key], mcomp[key], mconv[key]
				sep = ",\n"
			}
		}
	}
	printf "\n    ],\n"
	# The headline claims: seeded bayes beats cold chunked and cold
	# freq on compiles and wall clock everywhere, with conviction
	# counts identical to chunked (freq may convict a superset).
	for (c = 1; c <= ncfg; c++) {
		bk = "bayes" SUBSEP "seeded" SUBSEP cfgs[c]
		ck = "chunked" SUBSEP "cold" SUBSEP cfgs[c]
		fk = "freq" SUBSEP "cold" SUBSEP cfgs[c]
		if (!(bk in mcomp) || !(ck in mcomp) || !(fk in mcomp)) continue
		if (mcomp[bk] >= mcomp[ck] || mcomp[bk] >= mcomp[fk] ||
		    mms[bk] >= mms[ck] || mms[bk] >= mms[fk]) {
			printf "BENCH: seeded bayes does not win on %s\n", cfgs[c] > "/dev/stderr"
			bad = 1
		}
		if (mconv[bk] != mconv[ck]) {
			printf "BENCH: bayes convictions diverge from chunked on %s\n", cfgs[c] > "/dev/stderr"
			bad = 1
		}
	}
	printf "    \"seeded_bayes_beats_cold_chunked_and_freq_everywhere\": %s\n", bad ? "false" : "true"
	printf "  }\n"
	printf "}\n"
	exit bad
}' /tmp/bench_probe.txt > "$out"
echo "wrote $out"
