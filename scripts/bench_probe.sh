#!/bin/sh
# Records the sequential-vs-parallel probing baseline into
# BENCH_probe.json: wall-clock per workflow sweep, speculation counts,
# and the alias-query cache hit rate. Run from the repo root:
#
#   scripts/bench_probe.sh [count]
#
# On a single-core machine the parallel driver cannot overlap its
# speculative tests, so expect parallel >= sequential there; the >=2x
# speedup target is for multi-core hosts.
set -eu
count="${1:-3}"
out="BENCH_probe.json"

go test -run '^$' -bench 'Probe_(Sequential|Parallel)' -benchtime=1x \
	-count="$count" . | tee /tmp/bench_probe.txt

awk -v ncpu="$(nproc 2>/dev/null || echo 1)" '
/^BenchmarkProbe_(Sequential|Parallel)/ {
	name = ($1 ~ /Sequential/) ? "sequential" : "parallel"
	ns[name] += $3; n[name]++
	for (i = 5; i < NF; i += 2) {
		if ($(i+1) == "aa-cache-hit-%") hit[name] = $i
		if ($(i+1) == "compiles") comp[name] = $i
		if ($(i+1) == "tests-speculated") spec[name] = $i
		if ($(i+1) == "tests-wasted") waste[name] = $i
	}
}
END {
	printf "{\n"
	printf "  \"suite\": [\"lulesh-seq\", \"testsnap-openmp\", \"minigmg-sse\", \"quicksilver-openmp\"],\n"
	printf "  \"cpus\": %d,\n", ncpu
	sep = ""
	for (name in ns) {
		printf "%s  \"%s\": {\n", sep, name
		printf "    \"wall_clock_ms\": %.1f,\n", ns[name] / n[name] / 1e6
		printf "    \"compiles\": %d,\n", comp[name]
		printf "    \"tests_speculated\": %d,\n", spec[name]
		printf "    \"tests_wasted\": %d,\n", waste[name]
		printf "    \"aa_cache_hit_pct\": %.2f\n", hit[name]
		printf "  }"
		sep = ",\n"
	}
	printf "\n}\n"
}' /tmp/bench_probe.txt > "$out"
echo "wrote $out"
