#!/bin/sh
# serve_smoke.sh — the CI smoke test for oraql-serve. Builds the
# server, starts it, exercises every endpoint with the checked-in
# example program, asserts the second identical compilation is served
# from the cross-request cache (both in the response body and as a
# nonzero /metrics counter), runs a probe campaign end to end through
# both curl and the `oraql probe -server` client mode, and finally
# checks that SIGTERM drains cleanly. Run from the repo root:
#
#   scripts/serve_smoke.sh [port]
set -eu
port="${1:-8399}"
base="http://127.0.0.1:$port"
bin="${TMPDIR:-/tmp}/oraql-serve-smoke"
log="${TMPDIR:-/tmp}/oraql-serve-smoke.log"

fail() { echo "serve_smoke: FAIL: $*" >&2; [ -f "$log" ] && tail -20 "$log" >&2; exit 1; }

go build -o "$bin" ./cmd/oraql-serve
"$bin" -addr "127.0.0.1:$port" >"$log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT INT TERM

# Wait for the listener.
i=0
until curl -fs "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "server did not come up"
	sleep 0.2
done
echo "serve_smoke: server up on $base"

# 1. First compilation: a cache miss.
first=$(curl -fs -X POST -H 'Content-Type: application/json' \
	--data @examples/serve/compile-request.json "$base/v1/compile")
echo "$first" | grep -q '"cached": false' || fail "first compile should miss the cache: $first"
echo "$first" | grep -q '"exe_hash"' || fail "compile result carries no exe hash: $first"

# 2. Identical resubmission: must be served from the cache.
second=$(curl -fs -X POST -H 'Content-Type: application/json' \
	--data @examples/serve/compile-request.json "$base/v1/compile")
echo "$second" | grep -q '"cached": true' || fail "resubmission was not a cache hit: $second"
echo "serve_smoke: compile cache hit observed"

# 3. The hit is visible on /metrics as a nonzero counter.
metrics=$(curl -fs "$base/metrics")
hits=$(echo "$metrics" | awk '$1 == "oraql_result_cache_hits_total" { print $2 }')
[ -n "$hits" ] || fail "oraql_result_cache_hits_total missing from /metrics"
[ "$hits" -ge 1 ] 2>/dev/null || fail "oraql_result_cache_hits_total = $hits, want >= 1"
echo "$metrics" | grep -q '^oraql_aa_query_cache_lookups_total' ||
	fail "AA query cache counters missing from /metrics"
echo "serve_smoke: metrics report $hits cache hit(s)"

# 4. Probe campaign via the raw API: submit, poll to completion.
job=$(curl -fs -X POST -H 'Content-Type: application/json' \
	--data @examples/serve/probe-request.json "$base/v1/probe")
id=$(echo "$job" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || fail "probe submission returned no job id: $job"
i=0
while :; do
	info=$(curl -fs "$base/v1/jobs/$id")
	state=$(echo "$info" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -1)
	case "$state" in
	done) break ;;
	failed | canceled) fail "probe job $id ended $state: $info" ;;
	esac
	i=$((i + 1))
	[ "$i" -gt 150 ] && fail "probe job $id still $state after 30s"
	sleep 0.2
done
echo "$info" | grep -q '"final_seq"' || fail "probe result carries no final_seq: $info"
echo "serve_smoke: probe job $id done"

# 5. The same probe through the CLI client (-server mode).
go run ./cmd/oraql probe -file examples/serve/sum.mc -server "$base" |
	grep -q 'fully optimistic' || fail "oraql probe -server produced no summary"
echo "serve_smoke: oraql probe -server OK"

# 6. SIGTERM must drain cleanly.
kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "server did not exit after SIGTERM"
	sleep 0.1
done
trap - EXIT INT TERM
grep -q 'drained cleanly' "$log" || fail "no clean-drain line in the server log"
echo "serve_smoke: PASS"
