#!/bin/sh
# bench_warehouse.sh — records the forensics-warehouse benchmarks into
# BENCH_warehouse.json:
#
#   - ingest throughput: a synthetic 500-campaign fuzz corpus is filed
#     through `oraql warehouse ingest`; re-ingesting the whole corpus
#     must add zero records (content addressing);
#   - racing writers: two concurrent processes ingest the same 500
#     findings into a fresh shared directory — the corpus must end up
#     with exactly one record per unique finding;
#   - query latency: recurrence queries over the 500-record corpus,
#     answered byte-identically across repeated runs;
#   - scripted forensics: the forensics-query.oraql campaign (two real
#     probe campaigns + warehouse_query) must return byte-identical
#     output for worker counts 1 and 8 in fresh stores.
#
# Run from the repo root:
#
#   scripts/bench_warehouse.sh
set -eu
out="BENCH_warehouse.json"
tmp="${TMPDIR:-/tmp}/oraql-warehouse-bench"
rm -rf "$tmp"
mkdir -p "$tmp"

fail() { echo "bench_warehouse: FAIL: $*" >&2; exit 1; }
now_ms() { date +%s%3N; }

go build -o "$tmp/oraql" ./cmd/oraql

# --- Synthetic 500-campaign corpus. ----------------------------------
# Each file is a bare difftest report with a unique seed — one unique
# finding per file, exactly how -corpus-dir archives divergences.
reports="$tmp/reports"
mkdir -p "$reports"
n=500
i=1
while [ "$i" -le "$n" ]; do
	cat > "$reports/report-$i.json" <<EOF
{"seed": $i, "variant": "clean", "file": "p$i.mc", "source": "int main() { return $i; }", "ref": "ok", "got": "bad"}
EOF
	i=$((i + 1))
done

# --- Leg 1: ingest throughput + idempotent re-ingest. ----------------
cache="$tmp/corpus"
t0=$(now_ms)
"$tmp/oraql" warehouse ingest -cache-dir "$cache" -grammar default "$reports"/report-*.json > "$tmp/ingest.out"
t1=$(now_ms)
ingest_ms=$((t1 - t0))
[ "$ingest_ms" -gt 0 ] || ingest_ms=1
grep -q "ingested $n reports: $n new records, $n total in corpus" "$tmp/ingest.out" ||
	fail "first ingest did not file $n records: $(cat "$tmp/ingest.out")"
"$tmp/oraql" warehouse ingest -cache-dir "$cache" -grammar default "$reports"/report-*.json > "$tmp/reingest.out"
grep -q "ingested $n reports: 0 new records, $n total in corpus" "$tmp/reingest.out" ||
	fail "re-ingest added records: $(cat "$tmp/reingest.out")"
ingest_per_sec=$(awk "BEGIN { printf \"%.0f\", $n * 1000 / $ingest_ms }")

# --- Leg 2: two racing processes, one shared directory. --------------
race="$tmp/race"
"$tmp/oraql" warehouse ingest -cache-dir "$race" -grammar default "$reports"/report-*.json > "$tmp/race-a.out" &
pid_a=$!
"$tmp/oraql" warehouse ingest -cache-dir "$race" -grammar default "$reports"/report-*.json > "$tmp/race-b.out" &
pid_b=$!
wait "$pid_a" || fail "racing ingest process A failed"
wait "$pid_b" || fail "racing ingest process B failed"
race_records=$("$tmp/oraql" warehouse stats -cache-dir "$race" -json | sed -n 's/^  "records": \([0-9]*\),*$/\1/p')
[ "$race_records" = "$n" ] ||
	fail "racing writers left $race_records records, want exactly $n (one per unique finding)"

# --- Leg 3: query latency + byte-identical answers. ------------------
t0=$(now_ms)
"$tmp/oraql" warehouse query -cache-dir "$cache" -by grammar > "$tmp/q1.json"
"$tmp/oraql" warehouse query -cache-dir "$cache" -by shape -kind fuzz >> "$tmp/q1.json"
"$tmp/oraql" warehouse stats -cache-dir "$cache" -json >> "$tmp/q1.json"
t1=$(now_ms)
query_ms=$((t1 - t0))
"$tmp/oraql" warehouse query -cache-dir "$cache" -by grammar > "$tmp/q2.json"
"$tmp/oraql" warehouse query -cache-dir "$cache" -by shape -kind fuzz >> "$tmp/q2.json"
"$tmp/oraql" warehouse stats -cache-dir "$cache" -json >> "$tmp/q2.json"
cmp -s "$tmp/q1.json" "$tmp/q2.json" || fail "repeated warehouse queries differ"

# --- Leg 4: scripted forensics, byte-identical across worker counts. -
script="examples/campaigns/forensics-query.oraql"
"$tmp/oraql" run "$script" -cache-dir "$tmp/wh-j1" -j 1 -json > "$tmp/forensics-j1.out" 2> /dev/null
"$tmp/oraql" run "$script" -cache-dir "$tmp/wh-j8" -j 8 -json > "$tmp/forensics-j8.out" 2> /dev/null
cmp -s "$tmp/forensics-j1.out" "$tmp/forensics-j8.out" ||
	fail "forensics campaign output differs between -j 1 and -j 8"
# And across processes: a second run over the already-built store must
# answer identically (ingest is idempotent, queries are pure).
"$tmp/oraql" run "$script" -cache-dir "$tmp/wh-j1" -j 8 -json > "$tmp/forensics-rerun.out" 2> /dev/null
cmp -s "$tmp/forensics-j1.out" "$tmp/forensics-rerun.out" ||
	fail "forensics campaign output differs on a warm re-run"

cat > "$out" <<EOF
{
  "corpus_records": $n,
  "ingest": {
    "ms": $ingest_ms,
    "records_per_sec": $ingest_per_sec,
    "reingest_added": 0
  },
  "race": {
    "processes": 2,
    "records": $race_records,
    "exactly_one_per_finding": true
  },
  "query": {
    "ms": $query_ms,
    "byte_identical": true
  },
  "scripted_forensics": {
    "campaigns": 2,
    "worker_counts": [1, 8],
    "byte_identical": true
  }
}
EOF
echo "wrote $out"
