#!/bin/sh
# Records the compile benchmarks into BENCH_compile.json:
#
#   - per-configuration compile wall time with the analysis cache
#     enabled ("cached") and with force-invalidation ("forced"), plus
#     the cache hit rate;
#   - the per-function parallel pass scheduler at 1/2/4/8 workers,
#     warm (cached analyses) and cold (force-invalidated), with the
#     w1/w4 warm speedup. Speedup is bounded by the recorded
#     gomaxprocs — on a single-core host every width ties at ~1.0.
#
# Run from the repo root:
#
#   scripts/bench_compile.sh [count]
#
# Every configuration must show a hit rate > 0 — the pipeline reuses
# CFG info and MemorySSA across passes whenever the previous pass
# declared them preserved.
set -eu
count="${1:-3}"
out="BENCH_compile.json"

go test -run '^$' -bench 'Compile_AnalysisCache|Compile_Workers' -benchtime=1x \
	-count="$count" . | tee /tmp/bench_compile.txt

gomaxprocs="$(go run ./scripts/gomaxprocs 2>/dev/null || nproc)"

awk -v gomaxprocs="$gomaxprocs" '
/^BenchmarkCompile_AnalysisCache\// {
	split($1, parts, "/")
	cfg = parts[2]
	mode = parts[3]; sub(/-[0-9]+$/, "", mode)
	key = cfg SUBSEP mode
	ns[key] += $3; n[key]++
	if (!(cfg in seen)) { order[++ncfg] = cfg; seen[cfg] = 1 }
	for (i = 5; i < NF; i += 2) {
		if ($(i+1) == "analysis-hit-%") hit[key] = $i
		if ($(i+1) == "analysis-hits") hits[key] = $i
		if ($(i+1) == "analysis-misses") miss[key] = $i
	}
}
/^BenchmarkCompile_Workers\// {
	split($1, parts, "/")
	cfg = parts[2]
	w = parts[3]
	mode = parts[4]; sub(/-[0-9]+$/, "", mode)
	key = cfg SUBSEP w SUBSEP mode
	wns[key] += $3; wn[key]++
	if (!(cfg in wseen)) { worder[++nwcfg] = cfg; wseen[cfg] = 1 }
}
function wms(cfg, w, mode,    k) {
	k = cfg SUBSEP w SUBSEP mode
	return wns[k] / wn[k] / 1e6
}
END {
	printf "{\n  \"gomaxprocs\": %d,\n", gomaxprocs
	printf "  \"configs\": {\n"
	for (j = 1; j <= ncfg; j++) {
		cfg = order[j]
		ck = cfg SUBSEP "cached"; fk = cfg SUBSEP "forced"
		cms = ns[ck] / n[ck] / 1e6; fms = ns[fk] / n[fk] / 1e6
		printf "    \"%s\": {\n", cfg
		printf "      \"cached_ms\": %.2f,\n", cms
		printf "      \"forced_ms\": %.2f,\n", fms
		printf "      \"speedup\": %.2f,\n", fms / cms
		printf "      \"analysis_hits\": %d,\n", hits[ck]
		printf "      \"analysis_misses\": %d,\n", miss[ck]
		printf "      \"analysis_hit_pct\": %.2f\n", hit[ck]
		printf "    }%s\n", (j < ncfg) ? "," : ""
	}
	printf "  },\n  \"workers\": {\n"
	for (j = 1; j <= nwcfg; j++) {
		cfg = worder[j]
		printf "    \"%s\": {\n", cfg
		printf "      \"w1_warm_ms\": %.2f,\n", wms(cfg, "w1", "warm")
		printf "      \"w2_warm_ms\": %.2f,\n", wms(cfg, "w2", "warm")
		printf "      \"w4_warm_ms\": %.2f,\n", wms(cfg, "w4", "warm")
		printf "      \"w8_warm_ms\": %.2f,\n", wms(cfg, "w8", "warm")
		printf "      \"w1_cold_ms\": %.2f,\n", wms(cfg, "w1", "cold")
		printf "      \"w2_cold_ms\": %.2f,\n", wms(cfg, "w2", "cold")
		printf "      \"w4_cold_ms\": %.2f,\n", wms(cfg, "w4", "cold")
		printf "      \"w8_cold_ms\": %.2f,\n", wms(cfg, "w8", "cold")
		printf "      \"speedup_w4\": %.2f\n", wms(cfg, "w1", "warm") / wms(cfg, "w4", "warm")
		printf "    }%s\n", (j < nwcfg) ? "," : ""
	}
	printf "  }\n}\n"
}' /tmp/bench_compile.txt > "$out"
echo "wrote $out"
