#!/bin/sh
# Records the analysis-manager compile benchmark into
# BENCH_compile.json: per-configuration compile wall time with the
# analysis cache enabled ("cached") and with force-invalidation
# ("forced"), plus the cache hit rate. Run from the repo root:
#
#   scripts/bench_compile.sh [count]
#
# Every configuration must show a hit rate > 0 — the pipeline reuses
# CFG info and MemorySSA across passes whenever the previous pass
# declared them preserved.
set -eu
count="${1:-3}"
out="BENCH_compile.json"

go test -run '^$' -bench 'Compile_AnalysisCache' -benchtime=1x \
	-count="$count" . | tee /tmp/bench_compile.txt

awk '
/^BenchmarkCompile_AnalysisCache\// {
	split($1, parts, "/")
	cfg = parts[2]
	mode = parts[3]; sub(/-[0-9]+$/, "", mode)
	key = cfg SUBSEP mode
	ns[key] += $3; n[key]++
	if (!(cfg in seen)) { order[++ncfg] = cfg; seen[cfg] = 1 }
	for (i = 5; i < NF; i += 2) {
		if ($(i+1) == "analysis-hit-%") hit[key] = $i
		if ($(i+1) == "analysis-hits") hits[key] = $i
		if ($(i+1) == "analysis-misses") miss[key] = $i
	}
}
END {
	printf "{\n  \"configs\": {\n"
	for (j = 1; j <= ncfg; j++) {
		cfg = order[j]
		ck = cfg SUBSEP "cached"; fk = cfg SUBSEP "forced"
		cms = ns[ck] / n[ck] / 1e6; fms = ns[fk] / n[fk] / 1e6
		printf "    \"%s\": {\n", cfg
		printf "      \"cached_ms\": %.2f,\n", cms
		printf "      \"forced_ms\": %.2f,\n", fms
		printf "      \"speedup\": %.2f,\n", fms / cms
		printf "      \"analysis_hits\": %d,\n", hits[ck]
		printf "      \"analysis_misses\": %d,\n", miss[ck]
		printf "      \"analysis_hit_pct\": %.2f\n", hit[ck]
		printf "    }%s\n", (j < ncfg) ? "," : ""
	}
	printf "  }\n}\n"
}' /tmp/bench_compile.txt > "$out"
echo "wrote $out"
