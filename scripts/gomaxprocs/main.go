// Command gomaxprocs prints the runtime's GOMAXPROCS — the bound on
// any wall-clock speedup the parallel pass scheduler can show, which
// scripts/bench_compile.sh records beside the benchmark numbers.
package main

import (
	"fmt"
	"runtime"
)

func main() {
	fmt.Println(runtime.GOMAXPROCS(0))
}
