#!/bin/sh
# bench_diskcache.sh — records the persistent compile-cache benchmarks
# into BENCH_diskcache.json:
#
#   - the cold/warm cross-process matrix: `oraql sweep` compiles all 16
#     benchmark configurations into a fresh -cache-dir, then a SECOND
#     process sweeps the same directory warm. Exe hashes must be
#     byte-identical and the warm sweep at least 5x faster;
#   - the edited-program reprobe: a probe campaign persists its state,
#     the program is edited (a helper appended after main), and the
#     seeded reprobe must use strictly fewer compiles than probing the
#     edit from scratch while convicting the same guilty queries.
#
# Run from the repo root:
#
#   scripts/bench_diskcache.sh
set -eu
out="BENCH_diskcache.json"
tmp="${TMPDIR:-/tmp}/oraql-diskcache-bench"
rm -rf "$tmp"
mkdir -p "$tmp"

fail() { echo "bench_diskcache: FAIL: $*" >&2; exit 1; }

go build -o "$tmp/oraql" ./cmd/oraql

# --- Leg 1: cold vs warm sweep, separate processes, shared dir. ------
cache="$tmp/cache"
"$tmp/oraql" sweep -json -cache-dir "$cache" > "$tmp/cold.json"
"$tmp/oraql" sweep -json -cache-dir "$cache" > "$tmp/warm.json"

grep '"exe_hash"' "$tmp/cold.json" > "$tmp/cold.hashes"
grep '"exe_hash"' "$tmp/warm.json" > "$tmp/warm.hashes"
cmp -s "$tmp/cold.hashes" "$tmp/warm.hashes" ||
	fail "warm sweep exe hashes differ from cold"

json_num() { sed -n "s/^  \"$2\": \([0-9.]*\),*\$/\1/p" "$1" | head -1; }
cold_ms=$(json_num "$tmp/cold.json" total_ms)
warm_ms=$(json_num "$tmp/warm.json" total_ms)
nconf=$(grep -c '"exe_hash"' "$tmp/cold.json")
warm_hits=$(sed -n 's/.*"Hits": \([0-9]*\),*/\1/p' "$tmp/warm.json" | head -1)
speedup=$(awk "BEGIN { printf \"%.1f\", $cold_ms / $warm_ms }")
awk "BEGIN { exit !($cold_ms / $warm_ms >= 5) }" ||
	fail "warm sweep only ${speedup}x faster than cold (want >= 5x)"
[ "$warm_hits" -ge "$nconf" ] || fail "warm sweep hit disk only $warm_hits times"

# --- Leg 2: incremental reprobe of an edited program. ----------------
# Both versions keep the SAME file name (probed from sibling dirs):
# !dbg locations embed it, so a renamed file would change every
# function's content hash and disable verdict reuse — just like a real
# edit keeps the file name.
mkdir -p "$tmp/v1" "$tmp/v2"
cat > "$tmp/v1/hello.mc" <<'EOF'

int main() {
	double a[64];
	for (int i = 0; i < 64; i++) {
		a[i] = (double)i * 2.0;
	}
	for (int i = 0; i < 63; i++) {
		a[i+1] = a[i] * 0.5 + a[i+1];
	}
	double s = 0.0;
	for (int i = 0; i < 64; i++) {
		s = s + a[i];
	}
	print("sum=", s, "\n");
	return 0;
}
EOF
# The edit appends a helper AFTER main, so main's body (and content
# hash) is unchanged and its persisted per-query verdicts still apply.
cp "$tmp/v1/hello.mc" "$tmp/v2/hello.mc"
cat >> "$tmp/v2/hello.mc" <<'EOF'
double scale(double x) {
	return x * 3.0;
}
EOF

pcache="$tmp/probe-cache"
(cd "$tmp/v1" && "$tmp/oraql" probe -file hello.mc -cache-dir "$pcache" -json) \
	> "$tmp/probe_first.json" 2> /dev/null
(cd "$tmp/v2" && "$tmp/oraql" probe -file hello.mc -json) \
	> "$tmp/probe_scratch.json" 2> /dev/null
(cd "$tmp/v2" && "$tmp/oraql" probe -file hello.mc -cache-dir "$pcache" -json) \
	> "$tmp/probe_seeded.json" 2> /dev/null

probe_num() { sed -n "s/^  \"$2\": \([0-9]*\),*\$/\1/p" "$1" | head -1; }
scratch_compiles=$(probe_num "$tmp/probe_scratch.json" compiles)
seeded_compiles=$(probe_num "$tmp/probe_seeded.json" compiles)
seeded_disk=$(probe_num "$tmp/probe_seeded.json" tests_disk)
[ -z "$seeded_disk" ] && seeded_disk=0
[ "$seeded_compiles" -lt "$scratch_compiles" ] ||
	fail "seeded reprobe took $seeded_compiles compiles, scratch $scratch_compiles (want strictly fewer)"

# Same conviction set: compare the guilty queries' stable descriptors
# (pass, function, both location dumps) — indices may differ.
verdicts() { grep -E '"(pass|func|a|b)":' "$1" | sort; }
verdicts "$tmp/probe_scratch.json" > "$tmp/scratch.verdicts"
verdicts "$tmp/probe_seeded.json" > "$tmp/seeded.verdicts"
cmp -s "$tmp/scratch.verdicts" "$tmp/seeded.verdicts" ||
	fail "seeded reprobe convicted different queries than scratch"

cat > "$out" <<EOF
{
  "configs": $nconf,
  "sweep": {
    "cold_ms": $cold_ms,
    "warm_ms": $warm_ms,
    "speedup": $speedup,
    "warm_disk_hits": $warm_hits,
    "exe_hashes_identical": true
  },
  "reprobe": {
    "scratch_compiles": $scratch_compiles,
    "seeded_compiles": $seeded_compiles,
    "seeded_tests_from_disk": $seeded_disk,
    "verdicts_identical": true
  }
}
EOF
echo "wrote $out"
