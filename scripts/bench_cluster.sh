#!/bin/sh
# bench_cluster.sh — records the cluster-mode fleet benchmarks into
# BENCH_cluster.json:
#
#   - fleet scaling: 1-, 2-, and 4-process oraql-serve fleets, each
#     sharing one -cache-dir, swept cold through one instance and warm
#     through ANOTHER (one POST /v1/compile/batch over all 16
#     benchmark configurations). The warm sweep must be served without
#     a single new compilation anywhere in the fleet (>= 90% dedup is
#     the floor, 100% the expectation), with byte-identical exe
#     hashes, and oraql_compiles_total summed over the fleet must
#     equal the config count;
#   - peer-kill degradation: 2 instances on DISTINCT cache dirs
#     coupled only by -peers. The first instance is swept warm and
#     then killed with SIGKILL mid-fleet-sweep; the survivor's sweep
#     must still complete with identical exe hashes, booking at least
#     one oraql_peer_failures_total against the corpse.
#
# Run from the repo root:
#
#   scripts/bench_cluster.sh [base-port]
set -eu
baseport="${1:-18460}"
out="BENCH_cluster.json"
tmp="${TMPDIR:-/tmp}/oraql-cluster-bench"
rm -rf "$tmp"
mkdir -p "$tmp"

fail() {
	echo "bench_cluster: FAIL: $*" >&2
	for f in "$tmp"/serve-*.log; do
		[ -f "$f" ] && { echo "--- $f:" >&2; tail -5 "$f" >&2; }
	done
	exit 1
}

go build -o "$tmp/oraql" ./cmd/oraql
go build -o "$tmp/oraql-serve" ./cmd/oraql-serve

pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
}
trap cleanup EXIT INT TERM

# start_fleet <n> <firstport> <cachedir|"">  — one dir shared by the
# fleet when given, one private dir per instance otherwise. Sets $pids
# (newest fleet last) and $urls.
start_fleet() {
	n="$1"; first="$2"; shared="$3"
	urls=""
	i=0
	while [ "$i" -lt "$n" ]; do
		urls="$urls http://127.0.0.1:$((first + i))"
		i=$((i + 1))
	done
	i=0
	for self in $urls; do
		peers=""
		for u in $urls; do
			[ "$u" = "$self" ] && continue
			peers="$peers,$u"
		done
		peers="${peers#,}"
		dir="$shared"
		[ -n "$dir" ] || dir="$tmp/own-$((first + i))"
		set -- -addr "127.0.0.1:$((first + i))" -cache-dir "$dir" -quiet
		if [ -n "$peers" ]; then
			set -- "$@" -self "$self" -peers "$peers"
		fi
		"$tmp/oraql-serve" "$@" > "$tmp/serve-$((first + i)).log" 2>&1 &
		pids="$pids $!"
		i=$((i + 1))
	done
	for u in $urls; do
		j=0
		until curl -fs "$u/healthz" > /dev/null 2>&1; do
			j=$((j + 1))
			[ "$j" -gt 50 ] && fail "instance $u did not come up"
			sleep 0.2
		done
	done
}

# compiles_sum <url...> — oraql_compiles_total summed over the fleet.
compiles_sum() {
	total=0
	for u in "$@"; do
		v=$(curl -fs "$u/metrics" | awk '$1 == "oraql_compiles_total" { print $2 }')
		[ -n "$v" ] || fail "oraql_compiles_total missing on $u"
		total=$((total + v))
	done
	echo "$total"
}

# peer_metric_sum <metric> <url> — sum of a labeled peer series.
peer_metric_sum() {
	curl -fs "$2/metrics" |
		awk -v m="$1" 'index($1, m "{") == 1 { s += $2 } END { print s + 0 }'
}

json_num() { sed -n "s/^  \"$2\": \([0-9.]*\),*\$/\1/p" "$1" | head -1; }

# --- Phase 1: fleet scaling over a shared cache directory. ----------
: > "$tmp/fleets.json"
port="$baseport"
for n in 1 2 4; do
	start_fleet "$n" "$port" "$tmp/shared-$n"
	first_url="http://127.0.0.1:$port"
	warm_url="http://127.0.0.1:$((port + (n > 1 ? 1 : 0)))"

	"$tmp/oraql" sweep -json -server "$first_url" > "$tmp/cold-$n.json"
	"$tmp/oraql" sweep -json -server "$warm_url" > "$tmp/warm-$n.json"

	grep '"exe_hash"' "$tmp/cold-$n.json" > "$tmp/cold-$n.hashes"
	grep '"exe_hash"' "$tmp/warm-$n.json" > "$tmp/warm-$n.hashes"
	cmp -s "$tmp/cold-$n.hashes" "$tmp/warm-$n.hashes" ||
		fail "fleet n=$n: warm sweep exe hashes differ from cold"

	nconf=$(grep -c '"exe_hash"' "$tmp/cold-$n.json")
	compiles=$(compiles_sum $urls)
	[ "$compiles" -eq "$nconf" ] ||
		fail "fleet n=$n: $compiles compilations fleet-wide for $nconf configs (want exactly $nconf)"
	# Warm dedup: of the warm sweep's items, the share served without
	# a fresh compilation. compiles == nconf means all 16 were, but the
	# recorded floor is 90%.
	warm_compiles=$((compiles - nconf))
	dedup=$(awk "BEGIN { printf \"%.1f\", 100 * ($nconf - $warm_compiles) / $nconf }")
	awk "BEGIN { exit !($dedup >= 90) }" ||
		fail "fleet n=$n: warm dedup $dedup% < 90%"

	cold_ms=$(json_num "$tmp/cold-$n.json" total_ms)
	warm_ms=$(json_num "$tmp/warm-$n.json" total_ms)
	printf '    {"instances": %s, "configs": %s, "cold_ms": %s, "warm_ms": %s, "fleet_compiles": %s, "warm_dedup_pct": %s},\n' \
		"$n" "$nconf" "$cold_ms" "$warm_ms" "$compiles" "$dedup" >> "$tmp/fleets.json"
	echo "bench_cluster: fleet n=$n cold=${cold_ms}ms warm=${warm_ms}ms compiles=$compiles dedup=${dedup}%"

	cleanup
	pids=""
	port=$((port + n))
done
fleet_json=$(sed '$ s/},$/}/' "$tmp/fleets.json")

# --- Phase 2: peer-kill degradation on DISTINCT cache dirs. ---------
start_fleet 2 "$port" ""
a_url="http://127.0.0.1:$port"
b_url="http://127.0.0.1:$((port + 1))"
a_pid=$(echo "$pids" | awk '{ print $1 }')

"$tmp/oraql" sweep -json -server "$a_url" > "$tmp/kill-before.json"
# The fleet sweep is mid-flight: A holds every artifact, B none. Kill
# A hard — no drain, no goodbye — and let B finish the sweep.
kill -9 "$a_pid"
wait "$a_pid" 2>/dev/null || true
"$tmp/oraql" sweep -json -server "$b_url" > "$tmp/kill-after.json"

grep '"exe_hash"' "$tmp/kill-before.json" > "$tmp/kill-before.hashes"
grep '"exe_hash"' "$tmp/kill-after.json" > "$tmp/kill-after.hashes"
cmp -s "$tmp/kill-before.hashes" "$tmp/kill-after.hashes" ||
	fail "survivor's sweep exe hashes differ from the killed instance's"

failures=$(peer_metric_sum oraql_peer_failures_total "$b_url")
[ "$failures" -ge 1 ] ||
	fail "survivor booked $failures peer failures, want >= 1 (did it never forward to the corpse?)"
survivor_ms=$(json_num "$tmp/kill-after.json" total_ms)
echo "bench_cluster: peer-kill survivor completed in ${survivor_ms}ms with $failures booked peer failure(s)"

cat > "$out" <<EOF
{
  "configs": $nconf,
  "fleets": [
$fleet_json
  ],
  "peer_kill": {
    "survivor_ms": $survivor_ms,
    "survivor_peer_failures": $failures,
    "exe_hashes_identical": true
  }
}
EOF
echo "wrote $out"
