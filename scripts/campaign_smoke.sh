#!/bin/sh
# campaign_smoke.sh — the CI smoke test for campaign scripting. Runs
# every checked-in example campaign through `oraql run`, checks the
# cross-worker byte-identity of the scripted default probe, then
# starts oraql-serve with a persistent -cache-dir and replays a
# campaign through the sandboxed POST /v1/campaign path, asserting
# the script hash and kind-labeled job series on /metrics. Run from
# the repo root:
#
#   scripts/campaign_smoke.sh [port]
set -eu
port="${1:-8401}"
base="http://127.0.0.1:$port"
tmp="${TMPDIR:-/tmp}/oraql-campaign-smoke"
bin="$tmp/oraql-serve"
log="$tmp/serve.log"
rm -rf "$tmp" && mkdir -p "$tmp"

fail() { echo "campaign_smoke: FAIL: $*" >&2; [ -f "$log" ] && tail -20 "$log" >&2; exit 1; }

go build -o "$tmp/oraql" ./cmd/oraql
go build -o "$bin" ./cmd/oraql-serve

# 1. Registry introspection across the CLIs.
"$tmp/oraql" list -all | grep -q 'strategy' || fail "oraql list -all missing strategy registry"

# 2. Every example campaign runs locally. The default probe runs at
# two worker counts and must print byte-identical reports — the
# scripted campaign inherits the driver's determinism contract.
"$tmp/oraql" run examples/campaigns/default-probe.oraql -j 1 -json >"$tmp/probe-j1.json" ||
	fail "default-probe.oraql (-j 1)"
"$tmp/oraql" run examples/campaigns/default-probe.oraql -j 8 -json >"$tmp/probe-j8.json" ||
	fail "default-probe.oraql (-j 8)"
cmp -s "$tmp/probe-j1.json" "$tmp/probe-j8.json" ||
	fail "scripted probe output differs between -j 1 and -j 8"
grep -q '"exe_hash"' "$tmp/probe-j1.json" || fail "scripted probe reports no exe hashes"
echo "campaign_smoke: default-probe byte-identical across worker counts"

"$tmp/oraql" run examples/campaigns/aa-chain-sweep.oraql -j 8 >/dev/null ||
	fail "aa-chain-sweep.oraql"
"$tmp/oraql" run examples/campaigns/fuzz-grammar.oraql -j 4 >/dev/null ||
	fail "fuzz-grammar.oraql"
"$tmp/oraql" run examples/campaigns/forensics-query.oraql -j 4 -cache-dir "$tmp/forensics" >/dev/null ||
	fail "forensics-query.oraql"
"$tmp/oraql" run examples/campaigns/custom-strategy.oraql -j 4 -json >"$tmp/custom-strategy.json" ||
	fail "custom-strategy.oraql"
grep -q '"matches_linear": true' "$tmp/custom-strategy.json" ||
	fail "script-defined strategy diverged from compiled-in linear"
echo "campaign_smoke: all example campaigns PASS locally"

# 3. The sandbox rejects a runaway script cheaply.
cat >"$tmp/runaway.oraql" <<-'EOF'
	while true { let x = 1 }
EOF
if "$tmp/oraql" run "$tmp/runaway.oraql" -max-steps 5000 >/dev/null 2>"$tmp/budget.err"; then
	fail "runaway script was not stopped by -max-steps"
fi
grep -q 'instruction budget' "$tmp/budget.err" || fail "no budget error: $(cat "$tmp/budget.err")"
echo "campaign_smoke: -max-steps stops a runaway script"

# 4. The same campaign through a live server with a persistent cache.
"$bin" -addr "127.0.0.1:$port" -cache-dir "$tmp/cache" >"$log" 2>&1 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT INT TERM
i=0
until curl -fs "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "server did not come up"
	sleep 0.2
done

curl -fs "$base/v1/registry" | grep -q '"app-config"' || fail "/v1/registry missing app-config kind"

"$tmp/oraql" run examples/campaigns/default-probe.oraql -server "$base" -json \
	>"$tmp/probe-server.json" 2>"$tmp/probe-server.err" || {
	cat "$tmp/probe-server.err" >&2
	fail "campaign via POST /v1/campaign"
}
# Locally, print() shares stdout with the JSON value; on the server
# it streams to /events instead — compare from the value onward.
sed -n '/^{/,$p' "$tmp/probe-j1.json" >"$tmp/probe-j1.value.json"
cmp -s "$tmp/probe-server.json" "$tmp/probe-j1.value.json" ||
	fail "server-side campaign value differs from the local run"
sha=$(sed -n 's/.*script sha256 \([0-9a-f]*\).*/\1/p' "$tmp/probe-server.err")
[ -n "$sha" ] || fail "client did not report a script hash"
metrics=$(curl -fs "$base/metrics")
echo "$metrics" | grep -q "oraql_campaign_scripts_total{sha256=\"$sha\"} 1" ||
	fail "script hash $sha not exported on /metrics"
echo "$metrics" | grep -q 'oraql_jobs_total{kind="campaign",state="done"} 1' ||
	fail "campaign job series missing from /metrics"
echo "$metrics" | grep -q 'oraql_jobs_inflight{kind="campaign"} 0' ||
	fail "kind-labeled inflight gauge missing from /metrics"
echo "campaign_smoke: server campaign PASS (sha $sha)"

# 5. The scripted probes filed their findings in the server's
# warehouse: the endpoint answers over the shared -cache-dir and the
# corpus gauge shows on /metrics.
wh=$(curl -fs "$base/v1/warehouse")
echo "$wh" | grep -q '"op": "stats"' || fail "/v1/warehouse did not answer stats"
echo "$wh" | grep -q '"records": 3' || fail "/v1/warehouse should hold 3 probe records: $wh"
curl -fs -X POST -H 'Content-Type: application/json' \
	--data '{"op": "query", "by": "shape"}' "$base/v1/warehouse" |
	grep -q '"op": "query"' || fail "POST /v1/warehouse query failed"
curl -fs "$base/metrics" | grep -q 'oraql_warehouse_records 3' ||
	fail "oraql_warehouse_records gauge missing from /metrics"
echo "campaign_smoke: warehouse endpoint PASS"

kill -TERM "$pid"
i=0
while kill -0 "$pid" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "server did not exit after SIGTERM"
	sleep 0.1
done
trap - EXIT INT TERM
echo "campaign_smoke: PASS"
