package goraql

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/oraql/go-oraql/internal/apps"
	"github.com/oraql/go-oraql/internal/pipeline"
)

// artifacts is everything the parallel scheduler promises to keep
// byte-identical for every worker count: the executable hash, the
// optimized IR text, the -stats registry output, the merged AA
// statistics, and the deterministic half of the timing table (pass
// order, run counts, changed counts — wall time is inherently noisy).
type artifacts struct {
	exeHash string
	irText  string
	stats   string
	aaStats string
	timing  string
}

func compileArtifacts(t *testing.T, c *apps.Config, workers int) artifacts {
	t.Helper()
	cfg := pipeline.Config{
		Name:           c.ID,
		Source:         c.Source,
		SourceFile:     c.SourceName,
		Frontend:       c.Frontend,
		CompileWorkers: workers,
	}
	if cfg.SourceFile == "" {
		cfg.SourceFile = c.SourceFiles + ".mc"
	}
	cr, err := pipeline.Compile(cfg)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", c.ID, workers, err)
	}
	var a artifacts
	a.exeHash = cr.ExeHash()
	var ir, stats strings.Builder
	for _, ts := range []*pipeline.TargetStats{cr.Host, cr.Device} {
		if ts == nil {
			continue
		}
		ir.WriteString(ts.Module.String())
		ts.Pass.Print(&stats)
	}
	a.irText = ir.String()
	a.stats = stats.String()

	aaJSON, err := json.Marshal(cr.AAStats()) // map keys marshal sorted
	if err != nil {
		t.Fatal(err)
	}
	a.aaStats = string(aaJSON)

	var tb strings.Builder
	tm := cr.Timing()
	for _, pass := range tm.Passes() {
		pt := tm.Get(pass)
		tb.WriteString(pass)
		tb.WriteByte(' ')
		tb.WriteString(strings.Repeat("r", int(pt.Runs)))
		tb.WriteString(strings.Repeat("c", int(pt.Changed)))
		tb.WriteByte('\n')
	}
	a.timing = tb.String()
	return a
}

// TestCompileDeterministicAcrossWorkers is the determinism matrix:
// every benchmark configuration, compiled with 1, 2, and 8 workers,
// must produce byte-identical artifacts — the sequential compilation
// is the specification, the parallel ones must be indistinguishable
// from it.
func TestCompileDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles every app config three times")
	}
	for _, c := range apps.All() {
		c := c
		t.Run(c.ID, func(t *testing.T) {
			t.Parallel()
			ref := compileArtifacts(t, c, 1)
			for _, workers := range []int{2, 8} {
				got := compileArtifacts(t, c, workers)
				if got.exeHash != ref.exeHash {
					t.Errorf("workers=%d: exe hash %s != sequential %s", workers, got.exeHash, ref.exeHash)
				}
				if got.irText != ref.irText {
					t.Errorf("workers=%d: optimized IR text differs from sequential", workers)
				}
				if got.stats != ref.stats {
					t.Errorf("workers=%d: -stats output differs from sequential:\n--- sequential\n%s\n--- workers=%d\n%s",
						workers, ref.stats, workers, got.stats)
				}
				if got.aaStats != ref.aaStats {
					t.Errorf("workers=%d: AA statistics differ from sequential:\n--- sequential\n%s\n--- workers=%d\n%s",
						workers, ref.aaStats, workers, got.aaStats)
				}
				if got.timing != ref.timing {
					t.Errorf("workers=%d: timing-table pass order or run counts differ:\n--- sequential\n%s\n--- workers=%d\n%s",
						workers, ref.timing, workers, got.timing)
				}
			}
		})
	}
}
