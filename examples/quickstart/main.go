// Quickstart: compile a small program, break it with full optimism,
// and let the ORAQL driver find the dangerous alias queries.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	goraql "github.com/oraql/go-oraql"
)

// The program carries one genuine flow dependence: a[i+1] depends on
// a[i], so the loop must not be vectorized — but no conservative
// analysis can prove whether the two accesses overlap, and an
// optimistic "no-alias" answer miscompiles it.
const src = `
int main() {
	double a[64];
	for (int i = 0; i < 64; i++) {
		a[i] = (double)i * 0.5;
	}
	for (int i = 0; i < 63; i++) {
		a[i+1] = a[i] * 0.25 + a[i+1];
	}
	double s = 0.0;
	for (int i = 0; i < 64; i++) {
		s = s + a[i];
	}
	print("sum=", s, "\n");
	return 0;
}
`

func main() {
	// 1. Plain compilation and run: the reference behaviour.
	base, err := goraql.CompileSource(goraql.CompileConfig{
		Name: "quickstart", Source: src, SourceFile: "quickstart.mc",
	})
	if err != nil {
		log.Fatal(err)
	}
	ref, err := goraql.RunProgram(base.Program, goraql.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline output:          %s", ref.Stdout)
	fmt.Printf("baseline instructions:    %d\n", ref.Instrs)

	// 2. Fully optimistic compilation: every unanswered alias query
	// becomes "no-alias". The output changes — optimism is unsound.
	opt, err := goraql.CompileSource(goraql.CompileConfig{
		Name: "quickstart", Source: src, SourceFile: "quickstart.mc",
		ORAQL: &goraql.ORAQLOptions{},
	})
	if err != nil {
		log.Fatal(err)
	}
	wrong, err := goraql.RunProgram(opt.Program, goraql.RunOptions{})
	if err != nil {
		fmt.Printf("fully optimistic run:     crashed: %v\n", err)
	} else {
		fmt.Printf("fully optimistic output:  %s", wrong.Stdout)
	}

	// 3. The ORAQL workflow: bisect to a locally maximal sequence that
	// keeps the output intact.
	res, err := goraql.Probe(&goraql.ProbeSpec{
		Name:    "quickstart",
		Compile: goraql.CompileConfig{Source: src, SourceFile: "quickstart.mc"},
		Log:     os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := res.Final.Compile.ORAQLStats()
	fmt.Printf("probed sequence:          %q\n", res.FinalSeq.String())
	fmt.Printf("optimistic queries:       %d unique\n", stats.UniqueOptimistic)
	fmt.Printf("pessimistic queries:      %d unique (the dangerous ones)\n", stats.UniquePessimistic)
	fmt.Printf("final output:             %s", res.Final.Run.Stdout)
	fmt.Printf("instructions saved:       %d -> %d (%.1f%%)\n",
		res.Baseline.Run.Instrs, res.Final.Run.Instrs,
		100*float64(res.Baseline.Run.Instrs-res.Final.Run.Instrs)/float64(res.Baseline.Run.Instrs))

	// 4. Where do the dangerous queries come from? Source locations.
	for _, rec := range res.Final.Compile.Records() {
		if !rec.Optimistic {
			fmt.Printf("dangerous query in %s (pass %q), reused %d times from cache\n",
				rec.Func, rec.Pass, rec.CacheHits)
		}
	}
}
