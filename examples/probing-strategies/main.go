// Probing strategies: compares the paper's two bisection strategies
// (Section IV-B) — chunked recursion versus frequency-space splitting
// — and the effect of the executable-hash test cache, on a program
// with a cluster of dangerous queries.
//
//	go run ./examples/probing-strategies
package main

import (
	"fmt"
	"io"
	"log"

	goraql "github.com/oraql/go-oraql"
)

// Three genuinely aliasing triples sit close together in one function:
// the "important queries are often clustered" situation that motivated
// the chunked strategy.
const src = `
int main() {
	double buf[128];
	for (int i = 0; i < 128; i++) {
		buf[i] = (double)i * 0.125;
	}
	double* a = buf;
	double* b = buf + 32;
	double* c = buf + 64;
	double s = 0.0;
	for (int i = 0; i < 32; i++) {
		double t0 = a[i + 32];
		b[i] = t0 * 0.5 + b[i];
		double t1 = a[i + 32];
		double u0 = b[i + 32];
		c[i] = u0 * 0.25 + c[i];
		double u1 = b[i + 32];
		double v0 = c[i + 32];
		buf[i + 96] = v0 * 0.125;
		double v1 = c[i + 32];
		s = s + (t1 - t0) + (u1 - u0) + (v1 - v0) + t1 + u1 + v1;
	}
	print("s=", s, "\n");
	return 0;
}
`

func probe(strategy goraql.Strategy, noCache bool) *goraql.ProbeResult {
	res, err := goraql.Probe(&goraql.ProbeSpec{
		Name:            "clustered",
		Compile:         goraql.CompileConfig{Source: src, SourceFile: "clustered.mc"},
		Strategy:        strategy,
		DisableExeCache: noCache,
		Log:             io.Discard,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Printf("%-32s %10s %10s %12s %6s\n", "strategy", "compiles", "tests run", "tests cached", "pess")
	for _, row := range []struct {
		name     string
		strategy goraql.Strategy
		noCache  bool
	}{
		{"chunked", goraql.Chunked, false},
		{"chunked, no exe cache", goraql.Chunked, true},
		{"frequency-space", goraql.FreqSpace, false},
		{"frequency-space, no exe cache", goraql.FreqSpace, true},
	} {
		res := probe(row.strategy, row.noCache)
		s := res.Final.Compile.ORAQLStats()
		fmt.Printf("%-32s %10d %10d %12d %6d\n",
			row.name, res.Compiles, res.TestsRun, res.TestsCached, s.UniquePessimistic)
	}
	fmt.Println("\nclustered dangerous queries favour the chunked strategy, and the")
	fmt.Println("executable-hash cache removes a large share of the test runs —")
	fmt.Println("both effects the paper reports in Section IV-B.")
}
