// Stencil tuning: the paper's first use case (Section I) — a developer
// uses ORAQL to find out whether aliasing limits their kernel, and
// where a single `restrict` annotation recovers the entire gap,
// instead of blindly annotating everything.
//
//	go run ./examples/stencil-tuning
package main

import (
	"fmt"
	"io"
	"log"

	goraql "github.com/oraql/go-oraql"
)

// A Jacobi smoother whose arrays travel through pointer parameters.
// The compiler cannot prove `out` and `in` disjoint, so the sweep is
// not vectorized. The %RESTRICT% marker toggles the annotation.
const stencil = `
void sweep(double* %RESTRICT%out, double* %RESTRICT%in, int n) {
	for (int i = 1; i < n - 1; i++) {
		out[i] = in[i] * 0.5 + (in[i - 1] + in[i + 1]) * 0.25;
	}
}

int main() {
	double a[256];
	double b[256];
	for (int i = 0; i < 256; i++) {
		a[i] = sin((double)i * 0.1);
		b[i] = 0.0;
	}
	for (int it = 0; it < 20; it++) {
		sweep(b, a, 256);
		sweep(a, b, 256);
	}
	print("checksum ", checksum(a, 256), "\n");
	return 0;
}
`

func compileAndRun(src string, withORAQL bool) (instrs int64, vectorized int64) {
	cfg := goraql.CompileConfig{Name: "stencil", Source: src, SourceFile: "stencil.mc"}
	if withORAQL {
		cfg.ORAQL = &goraql.ORAQLOptions{}
	}
	c, err := goraql.CompileSource(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r, err := goraql.RunProgram(c.Program, goraql.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	return r.Instrs, c.Host.Pass.Get("Loop Vectorizer", "# vectorized loops")
}

func main() {
	plain := replace(stencil, "%RESTRICT%", "")
	annotated := replace(stencil, "%RESTRICT%", "restrict ")

	// Step 1: how much is on the table? Probe the plain version.
	res, err := goraql.Probe(&goraql.ProbeSpec{
		Name:    "stencil",
		Compile: goraql.CompileConfig{Source: plain, SourceFile: "stencil.mc"},
		Log:     io.Discard,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORAQL verdict: fully optimistic = %v (no true aliasing on this input)\n", res.FullyOptimistic)
	fmt.Printf("potential:     %d -> %d instructions (%.1f%% gap caused by alias information)\n",
		res.Baseline.Run.Instrs, res.Final.Run.Instrs,
		100*float64(res.Baseline.Run.Instrs-res.Final.Run.Instrs)/float64(res.Baseline.Run.Instrs))

	// Step 2: one targeted annotation instead of optimism.
	baseI, baseV := compileAndRun(plain, false)
	annI, annV := compileAndRun(annotated, false)
	oraqlI, _ := compileAndRun(plain, true)
	fmt.Printf("\n%-34s %12s %18s\n", "configuration", "instructions", "vectorized loops")
	fmt.Printf("%-34s %12d %18d\n", "plain", baseI, baseV)
	fmt.Printf("%-34s %12d %18d\n", "restrict-annotated", annI, annV)
	fmt.Printf("%-34s %12d %18s\n", "plain + (almost) perfect aliasing", oraqlI, "(upper bound)")
	if annI <= oraqlI {
		fmt.Println("\nthe single restrict annotation recovers the whole ORAQL upper bound —")
		fmt.Println("no further annotations are worth their maintenance cost.")
	} else {
		fmt.Printf("\nannotation recovers %.1f%% of the ORAQL upper bound.\n",
			100*float64(baseI-annI)/float64(baseI-oraqlI))
	}
}

func replace(s, old, new string) string {
	out := ""
	for {
		i := indexOf(s, old)
		if i < 0 {
			return out + s
		}
		out += s[:i] + new
		s = s[i+len(old):]
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
