// Custom alias analysis: the paper's second use case (Section I) —
// compiler developers use ORAQL to find the most important classes of
// conservatively answered queries, build a specialized analysis for
// them, and check that it actually removes the residual queries.
//
// Here the specialized analysis disambiguates distinct heap
// allocations reached through one level of context-struct indirection
// (the OpenMP dptr pattern of the paper's Fig. 3), a case the default
// chain cannot handle.
//
//	go run ./examples/custom-aa
package main

import (
	"fmt"
	"log"

	goraql "github.com/oraql/go-oraql"
	"github.com/oraql/go-oraql/internal/aa"
	"github.com/oraql/go-oraql/internal/ir"
	"github.com/oraql/go-oraql/internal/minic"
	"github.com/oraql/go-oraql/internal/oraql"
	"github.com/oraql/go-oraql/internal/passes"
)

// src passes two distinct heap arrays through a struct; every access
// reloads the data pointers, producing may-alias queries that reach
// ORAQL under the default chain.
const src = `
struct Pair {
	double* xs;
	double* ys;
};

void saxpy(Pair* p, int n, double a) {
	for (int i = 0; i < n; i++) {
		p.ys[i] = p.ys[i] + p.xs[i] * a;
	}
}

int main() {
	Pair p;
	p.xs = new double[128];
	p.ys = new double[128];
	for (int i = 0; i < 128; i++) {
		p.xs[i] = (double)i;
		p.ys[i] = 1.0;
	}
	for (int it = 0; it < 10; it++) {
		saxpy(&p, 128, 0.5);
	}
	print("checksum ", checksum(p.ys, 128), "\n");
	return 0;
}
`

// fieldAA answers queries between pointers loaded from *distinct
// fields* of the same struct object when both fields were only ever
// stored distinct allocation results — a deliberately narrow
// specialized analysis. The heavy lifting (matching loads of different
// constant offsets off one base, with the stored values being distinct
// __malloc results module-wide) mirrors how a production field-aware
// AA would work.
type fieldAA struct {
	mod *ir.Module
}

func (f *fieldAA) Name() string { return "field-aa" }

// fieldSlot identifies "load of base+off" where base is a function
// argument or alloca.
func fieldSlot(v ir.Value) (base ir.Value, off int64, ok bool) {
	ld, isLoad := v.(*ir.Instr)
	if !isLoad || ld.Op != ir.OpLoad || ld.Ty != ir.Ptr {
		return nil, 0, false
	}
	ptr := ld.Operands[0]
	if g, isGep := ptr.(*ir.Instr); isGep && g.Op == ir.OpGEP && len(g.Operands) == 1 {
		return g.Operands[0], g.Off, true
	}
	return ptr, 0, true
}

// distinctFieldInit reports whether every store to (anyObject, off) in
// the module stores a fresh __malloc result, and offsets offA != offB
// never receive the same value.
func (f *fieldAA) distinctFieldInit(offA, offB int64) bool {
	if offA == offB {
		return false
	}
	fresh := func(v ir.Value) bool {
		c, ok := v.(*ir.Instr)
		return ok && c.Op == ir.OpCall && c.Callee == "__malloc"
	}
	for _, fn := range f.mod.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Dead() || in.Op != ir.OpStore || in.Operands[0].Type() != ir.Ptr {
					continue
				}
				if !fresh(in.Operands[0]) {
					return false // a pointer store we cannot account for
				}
			}
		}
	}
	return true
}

func (f *fieldAA) Alias(a, b aa.MemLoc, _ *aa.QueryCtx) aa.Result {
	ua := aa.UnderlyingObject(a.Ptr)
	ub := aa.UnderlyingObject(b.Ptr)
	// Underlying objects that are loads of distinct struct fields.
	pa, pb := ua, ub
	if pa == nil {
		pa = baseOfGEPChain(a.Ptr)
	}
	if pb == nil {
		pb = baseOfGEPChain(b.Ptr)
	}
	baseA, offA, okA := fieldSlot(pa)
	baseB, offB, okB := fieldSlot(pb)
	if !okA || !okB || baseA != baseB {
		return aa.MayAlias
	}
	if f.distinctFieldInit(offA, offB) {
		return aa.NoAlias
	}
	return aa.MayAlias
}

func baseOfGEPChain(v ir.Value) ir.Value {
	for i := 0; i < 64; i++ {
		in, ok := v.(*ir.Instr)
		if !ok || in.Op != ir.OpGEP {
			return v
		}
		v = in.Operands[0]
	}
	return v
}

// residualQueries compiles the program with the given chain extension
// and returns how many unique queries fell through to ORAQL.
func residualQueries(withFieldAA bool) int {
	hostMod, _, err := minic.Compile("pair.mc", src, minic.Options{})
	if err != nil {
		log.Fatal(err)
	}
	chain := aa.DefaultChain(hostMod)
	if withFieldAA {
		chain = append(chain, &fieldAA{mod: hostMod})
	}
	mgr := aa.NewManager(hostMod, chain...)
	op := oraql.New(hostMod, oraql.Options{})
	mgr.Append(op)
	ctx := &passes.Context{Module: hostMod, AA: mgr, Stats: passes.NewStats()}
	passes.O3Pipeline().Run(ctx)
	if err := ir.Verify(hostMod); err != nil {
		log.Fatal(err)
	}
	return op.Stats().Unique()
}

func main() {
	// Sanity: the ORAQL workflow on the program is fully optimistic
	// (the dptr queries are real no-alias cases).
	res, err := goraql.Probe(&goraql.ProbeSpec{
		Name:    "custom-aa",
		Compile: goraql.CompileConfig{Source: src, SourceFile: "pair.mc"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORAQL verdict:   fully optimistic = %v\n", res.FullyOptimistic)

	before := residualQueries(false)
	after := residualQueries(true)
	fmt.Printf("default chain:   %d queries fell through to ORAQL\n", before)
	fmt.Printf("with field-aa:   %d queries fell through to ORAQL\n", after)
	fmt.Printf("the specialized analysis answers %d of the dptr-class queries\n", before-after)
	fmt.Println("the ORAQL report identified, without enabling the costly CFL analyses.")
}
